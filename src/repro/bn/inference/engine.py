"""Compile-once inference engine for discrete networks.

:func:`repro.bn.inference.variable_elimination.query` pays the full
price on every call: CPD→factor extraction, a min-fill ordering sweep,
and a chain of Python-level factor products.  That is the right tool for
one-off queries, but the serving surfaces (dComp, pAccel, problem
localization, the autonomic-manager loop) fire many queries against the
*same* model with only the evidence changing — exactly the regime the
paper targets with cheap model construction.

:class:`CompiledDiscreteModel` amortizes everything that does not depend
on the evidence *values*:

- CPD factors are extracted once at compile time (``DeterministicCPD``
  table expansion is the single most expensive step of a scratch query);
- for every ``(query-variables, evidence-pattern)`` signature a
  :class:`_QueryPlan` is built once and kept in a bounded LRU cache:
  evidence **values** are array inputs at execution time, never part of
  the plan key, so repeated query *shapes* skip all validation and
  dispatch;
- each plan contracts the CPD factors down to the **joint table**
  ``P(evidence-vars, query-vars)`` with a pairwise contraction schedule
  chosen by greedy/DP search over factor sizes
  (:mod:`repro.bn.inference.contraction` — in-repo, stdlib+numpy, no
  52-variable einsum cap).  The table is evidence-value independent, so
  a single query is a stride computation plus one gather, and
  :meth:`query_batch` answers N rows with one vectorized ``take`` —
  no per-row Python and no per-row contraction;
- signatures whose joint table would exceed ``max_joint_entries`` fall
  back to replaying the (cached) contraction schedule against
  evidence-sliced operands — still one vectorized pass per batch;
- :meth:`query_batch` accepts columnar integer evidence directly and
  never copies columns that already are 1-D integer arrays; an optional
  ``dtype=np.float32`` runs the batch in single precision (documented
  deviation bound :data:`FLOAT32_MAX_DEVIATION`);
- evidence-free marginals (the dComp/pAccel priors) are cached per
  variable by :meth:`prior`.

The engine treats the network as immutable — compile a new engine if
CPDs are refit (network construction already builds fresh objects
everywhere in this codebase).  Plan-cache bookkeeping (the LRU ordered
dict, hit/compile/eviction counters) is guarded by a per-engine lock so
the serving fabric's worker threads cannot corrupt the recency order or
evict a plan mid-lookup; plan *construction* happens outside the lock,
so on a racing miss two threads may build the same plan once each — the
loser's build is discarded and counted as a hit, never double-inserted.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.bn.factors import DiscreteFactor
from repro.bn.inference.contraction import (
    Schedule,
    execute_schedule,
    plan_contraction,
)
from repro.exceptions import InferenceError
from repro.obs.runtime import OBS as _OBS

#: Default LRU bound on cached query plans.  Adversarial query mixes
#: (every request a fresh signature) otherwise grow the cache without
#: limit; 256 covers every signature the serving layer emits today with
#: two orders of magnitude to spare.
DEFAULT_PLAN_CACHE_SIZE = 256

#: Default ceiling on precomputed joint-table sizes (entries, not
#: bytes): 2**20 float64 entries is 8 MiB per plan.  Signatures above
#: the ceiling use the evidence-sliced contraction path instead.
DEFAULT_MAX_JOINT_ENTRIES = 1 << 20

#: Documented bound on ``query_batch(..., dtype=np.float32)`` deviation
#: from the float64 path for normalized posteriors.  Gathering from a
#: float32 joint table rounds each entry once (2**-24 relative) and the
#: normalization adds a few ulps; benchmarks and tests assert it.
FLOAT32_MAX_DEVIATION = 5e-6

#: Synthetic variable name for the batch axis in sliced-path schedules.
#: NUL is not a legal network variable name, so it can never collide.
_BATCH_VAR = "\x00batch"

#: Nominal batch length used for planning sliced batch schedules (the
#: schedule is shared across batch sizes; relative step costs are what
#: matters, not the exact N).
_NOMINAL_BATCH = 1024


class _QueryPlan:
    """Everything reusable across queries sharing one (Q, E) signature."""

    __slots__ = (
        "variables",
        "evidence_vars",
        "ev_cards",
        "ev_strides",
        "out_shape",
        "out_size",
        "joint",              # (n_ev_states, out_size) float64 or None
        "joint_f32",          # lazily cast float32 twin of ``joint``
        "operands",           # list[(values, ev_vars, free_vars)]
        "operands_f32",       # lazily cast float32 operand tables
        "schedule_single",    # sliced-path schedule (joint too big)
        "schedule_batch",
        "elimination_order",  # memoized min-fill order for the sweep
    )

    def __init__(self, variables, evidence_vars, ev_cards, out_shape):
        self.variables = variables
        self.evidence_vars = evidence_vars
        self.ev_cards = ev_cards
        strides = []
        acc = 1
        for c in reversed(ev_cards):
            strides.append(acc)
            acc *= c
        self.ev_strides = tuple(reversed(strides))
        self.out_shape = out_shape
        self.out_size = int(np.prod(out_shape)) if out_shape else 1
        self.joint = None
        self.joint_f32 = None
        self.operands = None
        self.operands_f32 = None
        self.schedule_single = None
        self.schedule_batch = None
        self.elimination_order = None


class CompiledDiscreteModel:
    """A :class:`DiscreteBayesianNetwork` compiled for repeated queries."""

    def __init__(
        self,
        network,
        *,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        max_joint_entries: int = DEFAULT_MAX_JOINT_ENTRIES,
    ):
        from repro.bn.inference.variable_elimination import _network_factors

        if plan_cache_size < 1:
            raise InferenceError("plan_cache_size must be >= 1")
        if max_joint_entries < 1:
            raise InferenceError("max_joint_entries must be >= 1")
        self._nodes: tuple[str, ...] = tuple(map(str, network.nodes))
        self._cards: dict[str, int] = dict(network.cardinalities)
        self._factors: tuple[DiscreteFactor, ...] = tuple(_network_factors(network))
        self._scopes: tuple[tuple[str, ...], ...] = tuple(
            f.variables for f in self._factors
        )
        self._plans: "OrderedDict[tuple, _QueryPlan]" = OrderedDict()
        self._cache_lock = threading.Lock()
        self._plan_cache_size = int(plan_cache_size)
        self._max_joint_entries = int(max_joint_entries)
        self._priors: dict[str, DiscreteFactor] = {}
        self._hits = 0
        self._compiles = 0
        self._evictions = 0
        self._joint_tables = 0
        self._joint_entries = 0
        #: Failure-signalling hook for the serving layer: when set, it is
        #: invoked as ``hook(kind, variables, evidence)`` at the top of
        #: every evidence query (``kind`` is ``"query"`` or ``"batch"``).
        #: An exception raised by the hook propagates exactly like an
        #: internal engine fault, which is what chaos tests use to inject
        #: deterministic engine failures without monkeypatching numerics.
        self.failure_hook = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> tuple[str, ...]:
        return self._nodes

    @property
    def cardinalities(self) -> dict[str, int]:
        return dict(self._cards)

    @property
    def n_cached_plans(self) -> int:
        return len(self._plans)

    @property
    def plan_cache_capacity(self) -> int:
        return self._plan_cache_size

    def cardinality(self, variable: str) -> int:
        try:
            return self._cards[str(variable)]
        except KeyError:
            raise InferenceError(f"unknown variable {variable!r}") from None

    def cache_stats(self) -> dict:
        """Plan-cache tiers at a glance (for serving status surfaces)."""
        with self._cache_lock:
            return {
                "plans": len(self._plans),
                "capacity": self._plan_cache_size,
                "hits": self._hits,
                "compiles": self._compiles,
                "evictions": self._evictions,
                "joint_tables": self._joint_tables,
                "joint_entries": self._joint_entries,
            }

    # ------------------------------------------------------------------ #
    # Plan compilation
    # ------------------------------------------------------------------ #

    def _validate(self, variables: Sequence[str], evidence_vars: Iterable[str]) -> None:
        unknown = (set(variables) | set(evidence_vars)) - set(self._nodes)
        if unknown:
            raise InferenceError(f"unknown variables {sorted(unknown)}")
        overlap = set(variables) & set(evidence_vars)
        if overlap:
            raise InferenceError(f"variables also in evidence: {sorted(overlap)}")
        if not variables:
            raise InferenceError("need at least one query variable")
        if len(set(variables)) != len(variables):
            raise InferenceError(f"duplicate query variables: {list(variables)}")

    def _lookup(self, key: tuple) -> "_QueryPlan | None":
        with self._cache_lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self._hits += 1
        if plan is not None and _OBS.enabled:
            _OBS.metrics.counter("engine.plan.cache_hits").inc()
        return plan

    def _compile(self, key: tuple, variables: tuple, evidence_vars) -> _QueryPlan:
        """Build, cache (with LRU eviction), and return a plan.

        The expensive build happens outside the cache lock; insertion,
        eviction, and the counters happen under it.  A racing thread
        that compiled the same key first wins — this thread's build is
        discarded and its lookup counts as a hit.
        """
        self._validate(variables, evidence_vars)

        ev_order = tuple(sorted(evidence_vars))
        plan = _QueryPlan(
            variables=variables,
            evidence_vars=ev_order,
            ev_cards=tuple(self._cards[v] for v in ev_order),
            out_shape=tuple(self._cards[v] for v in variables),
        )
        output = ev_order + variables
        n_ev_states = 1
        for c in plan.ev_cards:
            n_ev_states *= c
        joint_entries = n_ev_states * plan.out_size
        schedule: "Schedule | None" = None
        try:
            schedule = plan_contraction(self._scopes, self._cards, output)
        except InferenceError:  # pragma: no cover - pathological widths
            schedule = None
        if (
            schedule is not None
            and joint_entries <= self._max_joint_entries
            and schedule.max_intermediate
            <= max(4 * self._max_joint_entries, joint_entries)
        ):
            joint = execute_schedule(schedule, [f.values for f in self._factors])
            plan.joint = np.ascontiguousarray(
                joint.reshape(n_ev_states, plan.out_size)
            )
            if _OBS.enabled:
                _OBS.metrics.counter("engine.plan.joint_tables").inc()
        else:
            self._build_sliced(plan)
            if _OBS.enabled:
                _OBS.metrics.counter("engine.plan.sliced").inc()

        n_evicted = 0
        with self._cache_lock:
            existing = self._plans.get(key)
            if existing is not None:
                # A racing thread compiled this key first; keep its plan
                # (callers may already hold references to it).
                self._plans.move_to_end(key)
                self._hits += 1
                return existing
            self._compiles += 1
            self._plans[key] = plan
            if plan.joint is not None:
                self._joint_tables += 1
                self._joint_entries += plan.joint.size
            while len(self._plans) > self._plan_cache_size:
                evicted_key, evicted = self._plans.popitem(last=False)
                if evicted.joint is not None:
                    self._joint_tables -= 1
                    self._joint_entries -= evicted.joint.size
                self._evictions += 1
                n_evicted += 1
        if _OBS.enabled:
            _OBS.metrics.counter("engine.plan.compiles").inc()
            if n_evicted:
                _OBS.metrics.counter("engine.plan.evictions").inc(n_evicted)
        return plan

    def _build_operands(self, plan: _QueryPlan) -> None:
        """Evidence-axes-first factor tables (sweep + sliced paths)."""
        if plan.operands is not None:
            return
        evidence_vars = set(plan.evidence_vars)
        operands = []
        for f in self._factors:
            ev_axes = [i for i, v in enumerate(f.variables) if v in evidence_vars]
            free_axes = [i for i, v in enumerate(f.variables) if v not in evidence_vars]
            ev_vars = tuple(f.variables[i] for i in ev_axes)
            free_vars = tuple(f.variables[i] for i in free_axes)
            # Evidence axes first so advanced indexing (scalar states or
            # row columns) lands the batch axis in front of the free axes.
            values = np.ascontiguousarray(np.transpose(f.values, ev_axes + free_axes))
            operands.append((values, ev_vars, free_vars))
        eliminate = (
            set(self._nodes) - set(plan.variables) - set(plan.evidence_vars)
        )
        plan.elimination_order = _min_fill_order(
            self._factors, eliminate, frozenset(plan.evidence_vars)
        )
        # Publish ``operands`` last: it is the is-built guard other
        # threads check, so everything it implies must be visible first.
        plan.operands = operands

    def _build_sliced(self, plan: _QueryPlan) -> None:
        """Schedules that replay against evidence-sliced operands."""
        self._build_operands(plan)
        cards = dict(self._cards)
        cards[_BATCH_VAR] = _NOMINAL_BATCH
        single_scopes = [free for _, _, free in plan.operands]
        batch_scopes = [
            ((_BATCH_VAR,) + free if ev else free)
            for _, ev, free in plan.operands
        ]
        try:
            plan.schedule_single = plan_contraction(
                single_scopes, cards, plan.variables
            )
            plan.schedule_batch = plan_contraction(
                batch_scopes, cards, (_BATCH_VAR,) + plan.variables
            )
        except InferenceError:  # pragma: no cover - pathological widths
            plan.schedule_single = None
            plan.schedule_batch = None

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def query(
        self,
        variables: Iterable[str],
        evidence: "Mapping[str, int] | None" = None,
    ) -> DiscreteFactor:
        """Posterior joint factor ``P(variables | evidence)``.

        Result matches
        :func:`repro.bn.inference.variable_elimination.query` (same scope
        order, normalized); only the cost differs.
        """
        _t0 = _OBS.clock() if _OBS.enabled else None
        variables = tuple(map(str, variables))
        evidence = (
            {str(k): int(v) for k, v in evidence.items()} if evidence else {}
        )
        key = (variables, frozenset(evidence))
        plan = self._lookup(key)
        if plan is None:
            plan = self._compile(key, variables, frozenset(evidence))
        flat = 0
        for v, card, stride in zip(
            plan.evidence_vars, plan.ev_cards, plan.ev_strides
        ):
            s = evidence[v]
            if not 0 <= s < card:
                raise InferenceError(
                    f"state {s} out of range for {v!r} (card {card})"
                )
            flat += s * stride
        if self.failure_hook is not None:
            self.failure_hook("query", variables, evidence)
        if plan.joint is not None:
            values = plan.joint[flat].reshape(plan.out_shape)
        elif plan.schedule_single is not None:
            arrays = [
                values[tuple(evidence[v] for v in ev_vars)] if ev_vars else values
                for values, ev_vars, _ in plan.operands
            ]
            values = execute_schedule(plan.schedule_single, arrays)
        else:  # pragma: no cover - pathological contraction widths
            values = self._eliminate(plan, evidence)
        total = float(values.sum())
        if total <= 0:
            raise InferenceError("evidence has zero probability under the model")
        if _t0 is not None:
            _OBS.metrics.counter("engine.query.calls").inc()
            _OBS.metrics.histogram("engine.query.seconds").observe(
                _OBS.clock() - _t0
            )
        return DiscreteFactor(variables, plan.out_shape, values / total)

    def query_batch(
        self,
        variables: Iterable[str],
        evidence_rows: "Mapping[str, Sequence[int]] | Sequence[Mapping[str, int]]",
        dtype: "np.dtype | type | None" = None,
    ) -> np.ndarray:
        """Answer N evidence rows in one vectorized pass.

        ``evidence_rows`` is either a mapping ``{variable: column of N
        state indices}`` or a sequence of N ``{variable: state}`` rows
        (all rows must observe the same variable set — that *is* the
        compiled signature).  Columnar 1-D integer arrays are used
        as-is, zero-copy.  Returns an ``(N, card(V1), ...)`` array whose
        row ``i`` is the normalized posterior
        ``P(variables | evidence_rows[i])``, identical (up to float
        error) to calling :meth:`query` row by row.

        ``dtype=np.float32`` runs the gather/normalization in single
        precision: roughly half the memory traffic, with posterior
        deviation from the float64 path bounded by
        :data:`FLOAT32_MAX_DEVIATION` (asserted by the benchmark suite).
        """
        _t0 = _OBS.clock() if _OBS.enabled else None
        if dtype is None:
            use_f32 = False
        else:
            dtype = np.dtype(dtype)
            if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
                raise InferenceError(
                    f"query_batch dtype must be float32 or float64, got {dtype}"
                )
            use_f32 = dtype == np.dtype(np.float32)
        variables = tuple(map(str, variables))
        columns = _evidence_columns(evidence_rows)
        key = (variables, frozenset(columns))
        plan = self._lookup(key)
        if plan is None:
            plan = self._compile(key, variables, frozenset(columns))
        if not columns:
            raise InferenceError("query_batch needs at least one evidence variable")
        n = -1
        for v, col in columns.items():
            if n == -1:
                n = col.size
            elif col.size != n:
                raise InferenceError(
                    "evidence columns have mismatched lengths "
                    f"{ {u: c.size for u, c in columns.items()} }"
                )
        if n == 0:
            raise InferenceError("query_batch needs at least one evidence row")
        try:
            flat = np.ravel_multi_index(
                tuple(columns[v] for v in plan.evidence_vars), plan.ev_cards
            )
        except ValueError:
            for v in plan.evidence_vars:
                col = columns[v]
                if col.size and (col.min() < 0 or col.max() >= self._cards[v]):
                    raise InferenceError(
                        f"evidence states for {v!r} out of range "
                        f"(card {self._cards[v]})"
                    ) from None
            raise  # pragma: no cover - ravel failed for another reason
        if self.failure_hook is not None:
            self.failure_hook("batch", variables, columns)
        if plan.joint is not None:
            table = plan.joint
            if use_f32:
                if plan.joint_f32 is None:
                    plan.joint_f32 = plan.joint.astype(np.float32)
                table = plan.joint_f32
            out = table.take(flat, axis=0)
            totals = out.sum(axis=1)
            bad = np.flatnonzero(totals <= 0)
            if bad.size:
                raise InferenceError(
                    "evidence has zero probability under the model at rows "
                    f"{bad[:5].tolist()}"
                )
            out = out / totals[:, None]
            out = out.reshape((n,) + plan.out_shape)
        else:
            out = self._batch_sliced(plan, columns, n, use_f32)
        if _t0 is not None:
            _OBS.metrics.counter("engine.query_batch.calls").inc()
            _OBS.metrics.counter("engine.query_batch.rows").inc(n)
            _OBS.metrics.histogram("engine.query_batch.seconds").observe(
                _OBS.clock() - _t0
            )
        return out

    def _batch_sliced(
        self,
        plan: _QueryPlan,
        columns: Mapping[str, np.ndarray],
        n: int,
        use_f32: bool,
    ) -> np.ndarray:
        """Batch answer for plans whose joint table was over budget."""
        if plan.schedule_batch is None:  # pragma: no cover - see _build_sliced
            out = np.stack(
                [
                    self._eliminate(
                        plan, {v: int(col[i]) for v, col in columns.items()}
                    )
                    for i in range(n)
                ]
            )
        else:
            operands = plan.operands
            if use_f32:
                if plan.operands_f32 is None:
                    plan.operands_f32 = [
                        (values.astype(np.float32), ev, free)
                        for values, ev, free in plan.operands
                    ]
                operands = plan.operands_f32
            arrays = [
                values[tuple(columns[v] for v in ev_vars)] if ev_vars else values
                for values, ev_vars, _ in operands
            ]
            out = execute_schedule(plan.schedule_batch, arrays)
        totals = out.reshape(n, -1).sum(axis=1)
        bad = np.flatnonzero(totals <= 0)
        if bad.size:
            raise InferenceError(
                "evidence has zero probability under the model at rows "
                f"{bad[:5].tolist()}"
            )
        out = out / totals.reshape((n,) + (1,) * len(plan.out_shape))
        if use_f32 and out.dtype != np.float32:  # pragma: no cover - stack path
            out = out.astype(np.float32)
        return out

    def query_via_sweep(
        self,
        variables: Iterable[str],
        evidence: "Mapping[str, int] | None" = None,
    ) -> DiscreteFactor:
        """Answer via the plan-guided factor-algebra sweep.

        Semantically identical to :meth:`query` but routed through
        :class:`~repro.bn.factors.DiscreteFactor` operations instead of
        the contraction kernels — an independent numeric path that the
        serving layer's fallback chain uses when the compiled kernel
        faults; :attr:`failure_hook` deliberately does not fire here.
        """
        variables = tuple(map(str, variables))
        evidence = (
            {str(k): int(v) for k, v in evidence.items()} if evidence else {}
        )
        key = (variables, frozenset(evidence))
        plan = self._lookup(key)
        if plan is None:
            plan = self._compile(key, variables, frozenset(evidence))
        for v in plan.evidence_vars:
            s = evidence[v]
            if not 0 <= s < self._cards[v]:
                raise InferenceError(
                    f"state {s} out of range for {v!r} (card {self._cards[v]})"
                )
        values = self._eliminate(plan, evidence)
        total = float(values.sum())
        if total <= 0:
            raise InferenceError("evidence has zero probability under the model")
        return DiscreteFactor(variables, plan.out_shape, values / total)

    def prior(self, variable: str) -> DiscreteFactor:
        """Cached evidence-free marginal ``P(variable)``."""
        variable = str(variable)
        cached = self._priors.get(variable)
        if cached is None:
            cached = self.query([variable], {})
            self._priors[variable] = cached
        return cached

    def posterior_mean_batch(
        self,
        variable: str,
        centers: np.ndarray,
        evidence_rows: "Mapping[str, Sequence[int]] | Sequence[Mapping[str, int]]",
    ) -> np.ndarray:
        """Vectorized counterpart of ``network.posterior_mean`` — one mean
        per evidence row, in the original (bin-center) units."""
        centers = np.asarray(centers, dtype=float)
        pmfs = self.query_batch([variable], evidence_rows)
        if centers.shape != pmfs.shape[1:]:
            raise InferenceError("centers do not match the variable's cardinality")
        return pmfs @ centers

    # ------------------------------------------------------------------ #
    # Factor-algebra sweep (independent numeric fallback)
    # ------------------------------------------------------------------ #

    def _eliminate(self, plan: _QueryPlan, evidence: Mapping[str, int]) -> np.ndarray:
        """One plan-guided sweep of factor-algebra elimination."""
        self._build_operands(plan)
        constants = 1.0
        live: list[DiscreteFactor] = []
        for values, ev_vars, free_vars in plan.operands:
            if ev_vars:
                values = values[tuple(evidence[v] for v in ev_vars)]
            if not free_vars:
                constants *= float(values)
            else:
                live.append(
                    DiscreteFactor(free_vars, [self._cards[v] for v in free_vars], values)
                )
        for var in plan.elimination_order:
            related = [f for f in live if var in f.variables]
            live = [f for f in live if var not in f.variables]
            if not related:
                continue
            product = related[0]
            for f in related[1:]:
                product = product.product(f)
            if set(product.variables) == {var}:
                constants *= float(product.values.sum())
            else:
                live.append(product.marginalize([var]))
        if not live:
            raise InferenceError("query produced an empty factor set")
        result = live[0]
        for f in live[1:]:
            result = result.product(f)
        return result.permute(plan.variables).values * constants


# --------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------- #


def _evidence_columns(evidence_rows) -> dict[str, np.ndarray]:
    """Normalize either batch-evidence form into integer index columns.

    Columnar input that already holds 1-D integer arrays passes through
    **zero-copy** (``np.shares_memory`` with the caller's arrays); only
    dtype/shape mismatches pay a conversion.  The row-mapping form fills
    one preallocated column per variable in a single pass.
    """
    if isinstance(evidence_rows, Mapping):
        columns: dict[str, np.ndarray] = {}
        for v, col in evidence_rows.items():
            arr = np.asarray(col)
            if arr.dtype != np.intp:
                if arr.dtype.kind in "iu":
                    arr = arr.astype(np.intp, copy=False)
                else:
                    arr = np.asarray(col, dtype=np.intp)
            if arr.ndim != 1:
                arr = arr.reshape(-1)
            columns[str(v)] = arr
        return columns
    rows = list(evidence_rows)
    if not rows:
        raise InferenceError("query_batch needs at least one evidence row")
    keys = tuple(map(str, rows[0]))
    key_set = set(keys)
    out = {k: np.empty(len(rows), dtype=np.intp) for k in keys}
    for i, row in enumerate(rows):
        row = {str(k): int(v) for k, v in row.items()}
        if set(row) != key_set:
            raise InferenceError(
                f"evidence row {i} observes {sorted(row)}, "
                f"expected {sorted(key_set)} (one signature per batch)"
            )
        for k in keys:
            out[k][i] = row[k]
    return out


def _min_fill_order(
    factors: Sequence[DiscreteFactor],
    eliminate: "set[str]",
    evidence_vars: "frozenset[str]",
) -> tuple[str, ...]:
    """Greedy min-fill order over ``eliminate`` on evidence-reduced scopes."""
    adj: dict[str, set[str]] = {}
    for f in factors:
        scope = [v for v in f.variables if v not in evidence_vars]
        for v in scope:
            adj.setdefault(v, set())
        for v in scope:
            adj[v] |= set(scope) - {v}
    order: list[str] = []
    remaining = set(eliminate)
    while remaining:
        best, best_fill = None, None
        for v in sorted(remaining):
            nbrs = list(adj.get(v, set()) & set(adj))
            fill = sum(
                1
                for i in range(len(nbrs))
                for j in range(i + 1, len(nbrs))
                if nbrs[j] not in adj.get(nbrs[i], set())
            )
            if best_fill is None or fill < best_fill:
                best, best_fill = v, fill
        order.append(best)
        remaining.discard(best)
        nbrs = adj.pop(best, set())
        for u in nbrs:
            adj[u].discard(best)
            adj[u] |= nbrs - {u}
    return tuple(order)
