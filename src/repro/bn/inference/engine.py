"""Compile-once inference engine for discrete networks.

:func:`repro.bn.inference.variable_elimination.query` pays the full
price on every call: CPD→factor extraction, a min-fill ordering sweep,
and a chain of Python-level factor products.  That is the right tool for
one-off queries, but the serving surfaces (dComp, pAccel, problem
localization, the autonomic-manager loop) fire many queries against the
*same* model with only the evidence changing — exactly the regime the
paper targets with cheap model construction.

:class:`CompiledDiscreteModel` amortizes everything that does not depend
on the evidence *values*:

- CPD factors are extracted once at compile time (``DeterministicCPD``
  table expansion is the single most expensive step of a scratch query);
- for every ``(query-variables, evidence-variables)`` signature a
  :class:`_QueryPlan` is memoized, holding the min-fill elimination
  order, the factor tables pre-transposed so evidence axes lead, and the
  ``np.einsum`` subscripts plus a cached contraction path;
- the actual numerics run through one ``np.einsum`` call per query, so
  repeated queries cost an advanced-indexing slice and a contraction —
  no Python factor algebra;
- :meth:`query_batch` answers N evidence rows in a single vectorized
  pass by advanced-indexing the evidence axes with index *columns*
  (adding one batch dimension) instead of reducing factors per row;
- evidence-free marginals (the dComp/pAccel priors) are cached per
  variable by :meth:`prior`.

The engine treats the network as immutable — compile a new engine if
CPDs are refit (network construction already builds fresh objects
everywhere in this codebase).

Networks whose variable count exceeds the einsum label alphabet fall
back to a plan-cached elimination sweep over
:class:`~repro.bn.factors.DiscreteFactor` operations: still compile-once
(factors + orders memoized), just not single-kernel.
"""

from __future__ import annotations

import string
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.bn.factors import DiscreteFactor
from repro.exceptions import InferenceError
from repro.obs.runtime import OBS as _OBS

#: einsum subscripts offer 52 single-letter labels; one is reserved for
#: the batch axis of :meth:`CompiledDiscreteModel.query_batch`.
_MAX_EINSUM_VARS = len(string.ascii_letters) - 1
_BATCH_LABEL = string.ascii_letters[-1]


class _QueryPlan:
    """Everything reusable across queries sharing one (Q, E) signature."""

    __slots__ = (
        "variables",
        "evidence_vars",
        "elimination_order",
        "operands",
        "subscripts_single",
        "subscripts_batch",
        "path_single",
        "path_batch",
        "out_shape",
    )

    def __init__(self, variables, evidence_vars, elimination_order, operands, subscripts_single, subscripts_batch, out_shape):
        self.variables = variables                  # query scope, in request order
        self.evidence_vars = evidence_vars          # tuple, fixed order for row columns
        self.elimination_order = elimination_order  # memoized min-fill order
        self.operands = operands                    # list[(values, ev_vars, free_vars)]
        self.subscripts_single = subscripts_single
        self.subscripts_batch = subscripts_batch
        self.path_single = None                     # cached einsum contraction paths
        self.path_batch = None
        self.out_shape = out_shape


class CompiledDiscreteModel:
    """A :class:`DiscreteBayesianNetwork` compiled for repeated queries."""

    def __init__(self, network):
        from repro.bn.inference.variable_elimination import _network_factors

        self._nodes: tuple[str, ...] = tuple(map(str, network.nodes))
        self._cards: dict[str, int] = dict(network.cardinalities)
        self._factors: tuple[DiscreteFactor, ...] = tuple(_network_factors(network))
        self._plans: dict[tuple, _QueryPlan] = {}
        self._priors: dict[str, DiscreteFactor] = {}
        self._use_einsum = len(self._nodes) <= _MAX_EINSUM_VARS
        if self._use_einsum:
            self._labels = dict(zip(self._nodes, string.ascii_letters))
        else:  # pragma: no cover - exercised only by very large networks
            self._labels = {}
        #: Failure-signalling hook for the serving layer: when set, it is
        #: invoked as ``hook(kind, variables, evidence)`` at the top of
        #: every evidence query (``kind`` is ``"query"`` or ``"batch"``).
        #: An exception raised by the hook propagates exactly like an
        #: internal engine fault, which is what chaos tests use to inject
        #: deterministic engine failures without monkeypatching numerics.
        self.failure_hook = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> tuple[str, ...]:
        return self._nodes

    @property
    def cardinalities(self) -> dict[str, int]:
        return dict(self._cards)

    @property
    def n_cached_plans(self) -> int:
        return len(self._plans)

    def cardinality(self, variable: str) -> int:
        try:
            return self._cards[str(variable)]
        except KeyError:
            raise InferenceError(f"unknown variable {variable!r}") from None

    # ------------------------------------------------------------------ #
    # Plan compilation
    # ------------------------------------------------------------------ #

    def _validate(self, variables: Sequence[str], evidence_vars: Iterable[str]) -> None:
        unknown = (set(variables) | set(evidence_vars)) - set(self._nodes)
        if unknown:
            raise InferenceError(f"unknown variables {sorted(unknown)}")
        overlap = set(variables) & set(evidence_vars)
        if overlap:
            raise InferenceError(f"variables also in evidence: {sorted(overlap)}")
        if not variables:
            raise InferenceError("need at least one query variable")
        if len(set(variables)) != len(variables):
            raise InferenceError(f"duplicate query variables: {list(variables)}")

    def _plan(self, variables: tuple[str, ...], evidence_vars: frozenset[str]) -> _QueryPlan:
        key = (variables, evidence_vars)
        plan = self._plans.get(key)
        if plan is not None:
            if _OBS.enabled:
                _OBS.metrics.counter("engine.plan.cache_hits").inc()
            return plan
        if _OBS.enabled:
            _OBS.metrics.counter("engine.plan.compiles").inc()

        ev_order = tuple(sorted(evidence_vars))
        eliminate = set(self._nodes) - set(variables) - evidence_vars
        order = _min_fill_order(self._factors, eliminate, evidence_vars)

        operands: list[tuple[np.ndarray, tuple[str, ...], tuple[str, ...]]] = []
        subs_single: list[str] = []
        subs_batch: list[str] = []
        for f in self._factors:
            ev_axes = [i for i, v in enumerate(f.variables) if v in evidence_vars]
            free_axes = [i for i, v in enumerate(f.variables) if v not in evidence_vars]
            ev_vars = tuple(f.variables[i] for i in ev_axes)
            free_vars = tuple(f.variables[i] for i in free_axes)
            # Evidence axes first so advanced indexing (scalar states or
            # row columns) lands the batch axis in front of the free axes.
            values = np.ascontiguousarray(np.transpose(f.values, ev_axes + free_axes))
            operands.append((values, ev_vars, free_vars))
            if self._use_einsum:
                free_labels = "".join(self._labels[v] for v in free_vars)
                subs_single.append(free_labels)
                subs_batch.append((_BATCH_LABEL if ev_vars else "") + free_labels)
        out_labels = "".join(self._labels[v] for v in variables) if self._use_einsum else ""
        subscripts_single = ",".join(subs_single) + "->" + out_labels
        subscripts_batch = ",".join(subs_batch) + "->" + _BATCH_LABEL + out_labels
        plan = _QueryPlan(
            variables=variables,
            evidence_vars=ev_order,
            elimination_order=order,
            operands=operands,
            subscripts_single=subscripts_single if self._use_einsum else None,
            subscripts_batch=subscripts_batch if self._use_einsum else None,
            out_shape=tuple(self._cards[v] for v in variables),
        )
        self._plans[key] = plan
        return plan

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def query(
        self,
        variables: Iterable[str],
        evidence: "Mapping[str, int] | None" = None,
    ) -> DiscreteFactor:
        """Posterior joint factor ``P(variables | evidence)``.

        Result matches
        :func:`repro.bn.inference.variable_elimination.query` (same scope
        order, normalized); only the cost differs.
        """
        _t0 = _OBS.clock() if _OBS.enabled else None
        variables = tuple(str(v) for v in variables)
        evidence = {str(k): int(v) for k, v in (evidence or {}).items()}
        self._validate(variables, evidence)
        for v, s in evidence.items():
            if not 0 <= s < self._cards[v]:
                raise InferenceError(
                    f"state {s} out of range for {v!r} (card {self._cards[v]})"
                )
        if self.failure_hook is not None:
            self.failure_hook("query", variables, evidence)
        plan = self._plan(variables, frozenset(evidence))
        if not self._use_einsum:  # pragma: no cover - large-network fallback
            values = self._eliminate(plan, evidence)
        else:
            arrays = [
                values[tuple(evidence[v] for v in ev_vars)] if ev_vars else values
                for values, ev_vars, _ in plan.operands
            ]
            if plan.path_single is None:
                plan.path_single = np.einsum_path(
                    plan.subscripts_single, *arrays, optimize="greedy"
                )[0]
            values = np.einsum(
                plan.subscripts_single, *arrays, optimize=plan.path_single
            )
        total = float(values.sum())
        if total <= 0:
            raise InferenceError("evidence has zero probability under the model")
        if _t0 is not None:
            _OBS.metrics.counter("engine.query.calls").inc()
            _OBS.metrics.histogram("engine.query.seconds").observe(
                _OBS.clock() - _t0
            )
        return DiscreteFactor(variables, plan.out_shape, values / total)

    def query_batch(
        self,
        variables: Iterable[str],
        evidence_rows: "Mapping[str, Sequence[int]] | Sequence[Mapping[str, int]]",
    ) -> np.ndarray:
        """Answer N evidence rows in one vectorized pass.

        ``evidence_rows`` is either a mapping ``{variable: column of N
        state indices}`` or a sequence of N ``{variable: state}`` rows
        (all rows must observe the same variable set — that *is* the
        compiled signature).  Returns an ``(N, card(V1), ...)`` array
        whose row ``i`` is the normalized posterior
        ``P(variables | evidence_rows[i])``, identical (up to float
        error) to calling :meth:`query` row by row.
        """
        _t0 = _OBS.clock() if _OBS.enabled else None
        variables = tuple(str(v) for v in variables)
        columns = _evidence_columns(evidence_rows)
        self._validate(variables, columns)
        if not columns:
            raise InferenceError("query_batch needs at least one evidence variable")
        n_rows = {v: col.size for v, col in columns.items()}
        n = next(iter(n_rows.values()))
        if any(size != n for size in n_rows.values()):
            raise InferenceError(f"evidence columns have mismatched lengths {n_rows}")
        if n == 0:
            raise InferenceError("query_batch needs at least one evidence row")
        for v, col in columns.items():
            if col.min() < 0 or col.max() >= self._cards[v]:
                raise InferenceError(
                    f"evidence states for {v!r} out of range (card {self._cards[v]})"
                )
        if self.failure_hook is not None:
            self.failure_hook("batch", variables, columns)
        plan = self._plan(variables, frozenset(columns))
        if not self._use_einsum:  # pragma: no cover - large-network fallback
            out = np.stack(
                [
                    self._eliminate(plan, {v: int(col[i]) for v, col in columns.items()})
                    for i in range(n)
                ]
            )
        else:
            arrays = [
                values[tuple(columns[v] for v in ev_vars)] if ev_vars else values
                for values, ev_vars, _ in plan.operands
            ]
            if plan.path_batch is None:
                plan.path_batch = np.einsum_path(
                    plan.subscripts_batch, *arrays, optimize="greedy"
                )[0]
            out = np.einsum(plan.subscripts_batch, *arrays, optimize=plan.path_batch)
        totals = out.reshape(n, -1).sum(axis=1)
        bad = np.flatnonzero(totals <= 0)
        if bad.size:
            raise InferenceError(
                f"evidence has zero probability under the model at rows {bad[:5].tolist()}"
            )
        if _t0 is not None:
            _OBS.metrics.counter("engine.query_batch.calls").inc()
            _OBS.metrics.counter("engine.query_batch.rows").inc(n)
            _OBS.metrics.histogram("engine.query_batch.seconds").observe(
                _OBS.clock() - _t0
            )
        return out / totals.reshape((n,) + (1,) * len(plan.out_shape))

    def query_via_sweep(
        self,
        variables: Iterable[str],
        evidence: "Mapping[str, int] | None" = None,
    ) -> DiscreteFactor:
        """Answer via the plan-guided factor-algebra sweep, regardless of
        einsum availability.

        Semantically identical to :meth:`query` but routed through
        :class:`~repro.bn.factors.DiscreteFactor` operations instead of
        the single einsum kernel.  The serving layer's fallback chain uses
        this as an independent backend when the compiled kernel faults;
        :attr:`failure_hook` deliberately does not fire here.
        """
        variables = tuple(str(v) for v in variables)
        evidence = {str(k): int(v) for k, v in (evidence or {}).items()}
        self._validate(variables, evidence)
        for v, s in evidence.items():
            if not 0 <= s < self._cards[v]:
                raise InferenceError(
                    f"state {s} out of range for {v!r} (card {self._cards[v]})"
                )
        plan = self._plan(variables, frozenset(evidence))
        values = self._eliminate(plan, evidence)
        total = float(values.sum())
        if total <= 0:
            raise InferenceError("evidence has zero probability under the model")
        return DiscreteFactor(variables, plan.out_shape, values / total)

    def prior(self, variable: str) -> DiscreteFactor:
        """Cached evidence-free marginal ``P(variable)``."""
        variable = str(variable)
        cached = self._priors.get(variable)
        if cached is None:
            cached = self.query([variable], {})
            self._priors[variable] = cached
        return cached

    def posterior_mean_batch(
        self,
        variable: str,
        centers: np.ndarray,
        evidence_rows: "Mapping[str, Sequence[int]] | Sequence[Mapping[str, int]]",
    ) -> np.ndarray:
        """Vectorized counterpart of ``network.posterior_mean`` — one mean
        per evidence row, in the original (bin-center) units."""
        centers = np.asarray(centers, dtype=float)
        pmfs = self.query_batch([variable], evidence_rows)
        if centers.shape != pmfs.shape[1:]:
            raise InferenceError("centers do not match the variable's cardinality")
        return pmfs @ centers

    # ------------------------------------------------------------------ #
    # Fallback elimination (networks too large for einsum labels)
    # ------------------------------------------------------------------ #

    def _eliminate(self, plan: _QueryPlan, evidence: Mapping[str, int]) -> np.ndarray:
        """One plan-guided sweep of factor-algebra elimination."""
        constants = 1.0
        live: list[DiscreteFactor] = []
        for values, ev_vars, free_vars in plan.operands:
            if ev_vars:
                values = values[tuple(evidence[v] for v in ev_vars)]
            if not free_vars:
                constants *= float(values)
            else:
                live.append(
                    DiscreteFactor(free_vars, [self._cards[v] for v in free_vars], values)
                )
        for var in plan.elimination_order:
            related = [f for f in live if var in f.variables]
            live = [f for f in live if var not in f.variables]
            if not related:
                continue
            product = related[0]
            for f in related[1:]:
                product = product.product(f)
            if set(product.variables) == {var}:
                constants *= float(product.values.sum())
            else:
                live.append(product.marginalize([var]))
        if not live:
            raise InferenceError("query produced an empty factor set")
        result = live[0]
        for f in live[1:]:
            result = result.product(f)
        return result.permute(plan.variables).values * constants


# --------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------- #


def _evidence_columns(evidence_rows) -> dict[str, np.ndarray]:
    """Normalize either batch-evidence form into integer index columns."""
    if isinstance(evidence_rows, Mapping):
        return {
            str(v): np.asarray(col, dtype=np.intp).reshape(-1)
            for v, col in evidence_rows.items()
        }
    rows = list(evidence_rows)
    if not rows:
        raise InferenceError("query_batch needs at least one evidence row")
    keys = set(map(str, rows[0]))
    columns: dict[str, list[int]] = {k: [] for k in keys}
    for i, row in enumerate(rows):
        row = {str(k): int(v) for k, v in row.items()}
        if set(row) != keys:
            raise InferenceError(
                f"evidence row {i} observes {sorted(row)}, "
                f"expected {sorted(keys)} (one signature per batch)"
            )
        for k in keys:
            columns[k].append(row[k])
    return {k: np.asarray(v, dtype=np.intp) for k, v in columns.items()}


def _min_fill_order(
    factors: Sequence[DiscreteFactor],
    eliminate: "set[str]",
    evidence_vars: "frozenset[str]",
) -> tuple[str, ...]:
    """Greedy min-fill order over ``eliminate`` on evidence-reduced scopes."""
    adj: dict[str, set[str]] = {}
    for f in factors:
        scope = [v for v in f.variables if v not in evidence_vars]
        for v in scope:
            adj.setdefault(v, set())
        for v in scope:
            adj[v] |= set(scope) - {v}
    order: list[str] = []
    remaining = set(eliminate)
    while remaining:
        best, best_fill = None, None
        for v in sorted(remaining):
            nbrs = list(adj.get(v, set()) & set(adj))
            fill = sum(
                1
                for i in range(len(nbrs))
                for j in range(i + 1, len(nbrs))
                if nbrs[j] not in adj.get(nbrs[i], set())
            )
            if best_fill is None or fill < best_fill:
                best, best_fill = v, fill
        order.append(best)
        remaining.discard(best)
        nbrs = adj.pop(best, set())
        for u in nbrs:
            adj[u].discard(best)
            adj[u] |= nbrs - {u}
    return tuple(order)
