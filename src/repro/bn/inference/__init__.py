"""Inference algorithms.

- :mod:`repro.bn.inference.gaussian` — exact joint-MVN construction and
  conditioning for linear-Gaussian networks (dComp / pAccel posteriors in
  the continuous setting).
- :mod:`repro.bn.inference.variable_elimination` — exact discrete
  inference (the discrete Section-5 models).
- :mod:`repro.bn.inference.engine` — compile-once engine for repeated /
  batched queries against a fixed discrete model (the serving hot path).
- :mod:`repro.bn.inference.sampling` — forward sampling and likelihood
  weighting for networks whose CPDs are not jointly tractable (hybrid
  nets with the nonlinear ``max`` response CPD).
- :mod:`repro.bn.inference.likelihood` — dataset scoring helpers.
"""

from repro.bn.inference.gaussian import (
    joint_gaussian,
    condition_gaussian,
    marginal_gaussian,
)
from repro.bn.inference.variable_elimination import query
from repro.bn.inference.engine import CompiledDiscreteModel
from repro.bn.inference.junction_tree import JunctionTree
from repro.bn.inference.sampling import forward_sample, likelihood_weighting
from repro.bn.inference.likelihood import log10_likelihood, mean_log_likelihood

__all__ = [
    "joint_gaussian",
    "condition_gaussian",
    "marginal_gaussian",
    "query",
    "CompiledDiscreteModel",
    "JunctionTree",
    "forward_sample",
    "likelihood_weighting",
    "log10_likelihood",
    "mean_log_likelihood",
]
