"""Exact discrete inference by variable elimination.

Used by the discrete Section-5 models: dComp's posterior over an
unobservable service's elapsed-time bins, and pAccel's posterior response
-time distribution given an accelerated service.  The elimination order is
chosen greedily by the min-fill heuristic, which is near-optimal for the
small, workflow-shaped networks that arise here.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.bn.cpd.deterministic import DeterministicCPD
from repro.bn.cpd.tabular import TabularCPD
from repro.bn.factors import DiscreteFactor
from repro.exceptions import InferenceError


def _network_factors(network) -> list[DiscreteFactor]:
    factors = []
    for node in network.nodes:
        cpd = network.cpd(node)
        if isinstance(cpd, (TabularCPD, DeterministicCPD)):
            factors.append(cpd.to_factor())
        else:
            raise InferenceError(
                f"variable elimination needs discrete CPDs; {node!r} has "
                f"{type(cpd).__name__}"
            )
    return factors


def _min_fill_order(factors: list[DiscreteFactor], eliminate: set[str]) -> list[str]:
    """Greedy min-fill elimination order over ``eliminate``."""
    # Build the interaction (moral-ish) graph of current factor scopes.
    adj: dict[str, set[str]] = {}
    for f in factors:
        for v in f.variables:
            adj.setdefault(v, set())
        for v in f.variables:
            adj[v] |= set(f.variables) - {v}
    order: list[str] = []
    remaining = set(eliminate)
    while remaining:
        best, best_fill = None, None
        for v in remaining:
            nbrs = adj.get(v, set()) & set(adj)
            fill = 0
            nlist = list(nbrs)
            for i in range(len(nlist)):
                for j in range(i + 1, len(nlist)):
                    if nlist[j] not in adj.get(nlist[i], set()):
                        fill += 1
            if best_fill is None or fill < best_fill:
                best, best_fill = v, fill
        order.append(best)
        remaining.discard(best)
        nbrs = adj.pop(best, set())
        for u in nbrs:
            adj[u].discard(best)
            adj[u] |= nbrs - {u}
    return order


def query(
    network,
    variables: Iterable[str],
    evidence: "Mapping[str, int] | None" = None,
) -> DiscreteFactor:
    """Posterior joint factor ``P(variables | evidence)``.

    Parameters
    ----------
    network:
        A :class:`repro.bn.network.DiscreteBayesianNetwork`.
    variables:
        Query variables (kept in the returned factor's scope).
    evidence:
        Observed ``{variable: state_index}``.
    """
    variables = [str(v) for v in variables]
    evidence = {str(k): int(v) for k, v in (evidence or {}).items()}
    all_nodes = set(network.nodes)
    unknown = (set(variables) | set(evidence)) - all_nodes
    if unknown:
        raise InferenceError(f"unknown variables {sorted(unknown)}")
    overlap = set(variables) & set(evidence)
    if overlap:
        raise InferenceError(f"variables also in evidence: {sorted(overlap)}")
    if not variables:
        raise InferenceError("need at least one query variable")

    # Factors fully covered by evidence collapse to scalars; track them so
    # the zero-probability-evidence check below stays meaningful.
    constants = 1.0
    live: list[DiscreteFactor] = []
    for f in _network_factors(network):
        if set(f.variables) <= set(evidence):
            constants *= f.value_at(evidence)
        else:
            live.append(f.reduce(evidence))

    eliminate = all_nodes - set(variables) - set(evidence)
    for var in _min_fill_order(live, eliminate):
        related = [f for f in live if var in f.variables]
        live = [f for f in live if var not in f.variables]
        if not related:
            continue
        product = related[0]
        for f in related[1:]:
            product = product.product(f)
        if set(product.variables) == {var}:
            constants *= float(product.values.sum())
        else:
            live.append(product.marginalize([var]))

    if not live:
        raise InferenceError("query produced an empty factor set")
    result = live[0]
    for f in live[1:]:
        result = result.product(f)
    result = DiscreteFactor(result.variables, result.cardinalities, result.values * constants)
    if result.values.sum() <= 0:
        raise InferenceError("evidence has zero probability under the model")
    return result.normalize().permute(
        [v for v in variables if v in result.variables]
        + [v for v in result.variables if v not in variables]
    )
