"""Sampling-based inference.

Hybrid networks carry the workflow's nonlinear ``max`` in the response
CPD, which no closed-form posterior survives; likelihood weighting keeps
those queries answerable.  Forward sampling also generates synthetic
datasets from hand-built ground-truth networks in tests and benchmarks.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.bn.data import Dataset
from repro.exceptions import InferenceError
from repro.utils.rng import ensure_rng


def forward_sample(network, n: int, rng=None) -> Dataset:
    """Ancestral sampling — thin functional wrapper over ``network.sample``."""
    return network.sample(n, ensure_rng(rng))


def likelihood_weighting(
    network,
    evidence: Mapping[str, float],
    n: int = 10_000,
    rng=None,
) -> tuple[Dataset, np.ndarray]:
    """Draw weighted posterior samples given evidence.

    Evidence nodes are clamped to their observed values; every other node
    is sampled from its CPD given the (possibly clamped) parents.  Each
    sample's weight is the likelihood of the evidence nodes' CPDs at the
    clamped values.

    Returns
    -------
    (samples, weights):
        ``samples`` is a :class:`Dataset` over all network nodes (evidence
        columns are constant) and ``weights`` an ``(n,)`` array of
        unnormalized importance weights.
    """
    rng = ensure_rng(rng)
    evidence = {str(k): v for k, v in evidence.items()}
    unknown = set(evidence) - set(map(str, network.nodes))
    if unknown:
        raise InferenceError(f"evidence on unknown nodes {sorted(unknown)}")
    if n <= 0:
        raise InferenceError(f"sample size must be positive, got {n}")

    drawn: dict[str, np.ndarray] = {}
    log_weights = np.zeros(n)
    for node in network.dag.topological_order():
        node = str(node)
        cpd = network.cpd(node)
        parent_values = {p: drawn[p] for p in cpd.parents}
        if node in evidence:
            clamped = np.full(n, evidence[node])
            drawn[node] = clamped
            # Weight contribution: per-row likelihood of the clamped value.
            cols = {node: clamped, **{p: parent_values[p] for p in cpd.parents}}
            log_weights += cpd.log_likelihood(Dataset(cols))
        else:
            drawn[node] = cpd.sample(parent_values, n, rng)

    # Shift for numerical stability; weights are defined up to a constant.
    finite = np.isfinite(log_weights)
    if not finite.any():
        raise InferenceError("all importance weights are zero; evidence impossible?")
    shift = log_weights[finite].max()
    weights = np.where(finite, np.exp(log_weights - shift), 0.0)
    return Dataset({k: drawn[k] for k in map(str, network.nodes)}), weights


def weighted_mean(values: np.ndarray, weights: np.ndarray) -> float:
    """Importance-weighted posterior mean."""
    total = weights.sum()
    if total <= 0:
        raise InferenceError("weights sum to zero")
    return float(np.dot(values, weights) / total)


def weighted_quantile(values: np.ndarray, weights: np.ndarray, q: float) -> float:
    """Importance-weighted posterior quantile (linear interpolation)."""
    if not 0.0 <= q <= 1.0:
        raise InferenceError(f"quantile must be in [0, 1], got {q}")
    order = np.argsort(values)
    v = np.asarray(values, dtype=float)[order]
    w = np.asarray(weights, dtype=float)[order]
    total = w.sum()
    if total <= 0:
        raise InferenceError("weights sum to zero")
    cdf = np.cumsum(w) / total
    return float(np.interp(q, cdf, v))


def effective_sample_size(weights: np.ndarray) -> float:
    """Kish effective sample size — a health check for weighted posteriors."""
    w = np.asarray(weights, dtype=float)
    total = w.sum()
    if total <= 0:
        return 0.0
    return float(total * total / np.sum(w * w))
