"""Exact inference for linear-Gaussian Bayesian networks.

A linear-Gaussian network is equivalent to one joint multivariate normal;
:func:`joint_gaussian` builds it by the standard topological recursion and
:func:`condition_gaussian` applies Gaussian conditioning, giving the exact
posteriors that dComp (posterior of an unobservable service's elapsed
time) and pAccel (posterior response time under a hypothetical
acceleration) need in the continuous setting.

References: Shachter & Kenley (1989); Koller & Friedman §7.2.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.bn.cpd.linear_gaussian import LinearGaussianCPD
from repro.exceptions import InferenceError


def joint_gaussian(network) -> tuple[list[str], np.ndarray, np.ndarray]:
    """Convert a linear-Gaussian network to ``(names, mean, cov)``.

    Processing nodes in topological order, with ``w`` the coefficient
    vector of node *i* over its parents ``pa``:

    - ``mean[i] = b0 + w · mean[pa]``
    - ``cov[i, j] = w · cov[pa, j]`` for previously processed ``j``
    - ``cov[i, i] = σ²_i + w · cov[pa, pa] · w``
    """
    order = [str(n) for n in network.dag.topological_order()]
    index = {n: i for i, n in enumerate(order)}
    k = len(order)
    mean = np.zeros(k)
    cov = np.zeros((k, k))
    for n in order:
        cpd = network.cpd(n)
        if not isinstance(cpd, LinearGaussianCPD):
            raise InferenceError(
                f"joint_gaussian requires linear-Gaussian CPDs; "
                f"{n!r} has {type(cpd).__name__}"
            )
        i = index[n]
        pa = [index[p] for p in cpd.parents]
        w = cpd.coefficients
        mean[i] = cpd.intercept + (w @ mean[pa] if pa else 0.0)
        if pa:
            # Covariance with every already-processed node (includes parents).
            done = [index[m] for m in order[: order.index(n)]]
            cov[i, done] = w @ cov[np.ix_(pa, done)]
            cov[done, i] = cov[i, done]
            cov[i, i] = cpd.variance + w @ cov[np.ix_(pa, pa)] @ w
        else:
            cov[i, i] = cpd.variance
    return order, mean, cov


def marginal_gaussian(
    names: list[str],
    mean: np.ndarray,
    cov: np.ndarray,
    variables: Iterable[str],
) -> tuple[list[str], np.ndarray, np.ndarray]:
    """Marginalize a joint MVN onto ``variables`` (order preserved)."""
    variables = [str(v) for v in variables]
    missing = [v for v in variables if v not in names]
    if missing:
        raise InferenceError(f"unknown variables {missing}")
    idx = [names.index(v) for v in variables]
    return variables, mean[idx].copy(), cov[np.ix_(idx, idx)].copy()


def condition_gaussian(
    names: list[str],
    mean: np.ndarray,
    cov: np.ndarray,
    evidence: Mapping[str, float],
    jitter: float = 1e-12,
) -> tuple[list[str], np.ndarray, np.ndarray]:
    """Condition ``N(mean, cov)`` on ``evidence`` (exact Schur complement).

    Returns the posterior ``(names, mean, cov)`` over the remaining
    variables:

    - ``μ' = μ_a + Σ_ab Σ_bb⁻¹ (e - μ_b)``
    - ``Σ' = Σ_aa - Σ_ab Σ_bb⁻¹ Σ_ba``

    A tiny ``jitter`` ridge keeps the solve stable when evidence variables
    are nearly deterministic (e.g. near-zero-variance monitoring noise).
    """
    evidence = {str(k): float(v) for k, v in evidence.items()}
    unknown = [v for v in evidence if v not in names]
    if unknown:
        raise InferenceError(f"evidence on unknown variables {unknown}")
    if not evidence:
        return list(names), mean.copy(), cov.copy()
    b = [names.index(v) for v in evidence]
    a = [i for i in range(len(names)) if i not in set(b)]
    if not a:
        raise InferenceError("evidence covers every variable; nothing to infer")
    e = np.array([evidence[names[i]] for i in b], dtype=float)
    s_bb = cov[np.ix_(b, b)] + jitter * np.eye(len(b))
    s_ab = cov[np.ix_(a, b)]
    solve = np.linalg.solve(s_bb, np.column_stack([e - mean[b]]))
    post_mean = mean[a] + (s_ab @ solve).ravel()
    gain = np.linalg.solve(s_bb, s_ab.T)
    post_cov = cov[np.ix_(a, a)] - s_ab @ gain
    # Symmetrize to wash out float asymmetry before downstream eigendecomp.
    post_cov = 0.5 * (post_cov + post_cov.T)
    return [names[i] for i in a], post_mean, post_cov


def conditional_of(
    names: list[str],
    mean: np.ndarray,
    cov: np.ndarray,
    variable: str,
    evidence: Mapping[str, float],
) -> tuple[float, float]:
    """Posterior ``(mean, variance)`` of one variable given evidence."""
    post_names, post_mean, post_cov = condition_gaussian(names, mean, cov, evidence)
    if variable not in post_names:
        raise InferenceError(f"{variable!r} is part of the evidence or unknown")
    i = post_names.index(variable)
    return float(post_mean[i]), float(max(post_cov[i, i], 0.0))
