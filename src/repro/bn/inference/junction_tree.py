"""Clique-tree (junction-tree) inference for discrete networks.

Variable elimination answers one query per elimination sweep; dComp-style
workloads ask for *every* unobservable service's posterior at once.  A
calibrated clique tree computes all single-variable marginals in two
message-passing sweeps over the tree, after which each query is a cheap
clique marginalization.

Construction follows the classic recipe (Lauritzen & Spiegelhalter):

1. moralize the DAG and triangulate it with min-fill elimination,
   collecting the elimination cliques;
2. keep the maximal cliques and connect them with a maximum-weight
   spanning tree over separator sizes (which satisfies the running-
   intersection property for elimination-ordered cliques);
3. multiply each CPD factor into one clique containing its family;
4. calibrate with a collect/distribute pass of sum-product messages.

The expensive steps — triangulation, spanning tree, factor assignment —
depend only on the *network*, so they run once.  Evidence enters as
one-hot indicator slices multiplied into the home clique's potential,
and :meth:`JunctionTree.absorb` / :meth:`JunctionTree.retract` change
the observed set *incrementally*: only the (cheap) message-passing
recalibration reruns, never the tree construction.  Calibration is lazy,
so an absorb/retract burst pays for one recalibration, not one per call.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.bn.factors import DiscreteFactor
from repro.exceptions import InferenceError
from repro.obs.runtime import OBS as _OBS


class JunctionTree:
    """A calibrated clique tree over a discrete Bayesian network.

    The tree structure is built once, evidence-free; ``evidence`` given
    here (or later via :meth:`absorb`) only re-triggers calibration.
    """

    def __init__(self, network, evidence: "Mapping[str, int] | None" = None):
        from repro.bn.inference.variable_elimination import _network_factors

        self._cards: dict[str, int] = dict(network.cardinalities)
        factors = _network_factors(network)
        variables = [str(n) for n in network.nodes]
        self._cliques = _triangulate(factors, variables)
        self._edges = _spanning_tree(self._cliques)
        self._base_potentials = _assign_factors(self._cliques, factors, self._cards)
        # Home clique for each variable's evidence indicator.
        self._home: dict[str, int] = {}
        for v in variables:
            self._home[v] = next(i for i, c in enumerate(self._cliques) if v in c)
        self._evidence: dict[str, int] = {}
        self._beliefs: "list[DiscreteFactor] | None" = None
        if evidence:
            self.absorb(evidence)
        else:
            self._recalibrate()

    # ------------------------------------------------------------------ #

    @property
    def evidence(self) -> dict[str, int]:
        """The currently absorbed evidence (a copy)."""
        return dict(self._evidence)

    @property
    def cliques(self) -> tuple[frozenset, ...]:
        return tuple(self._cliques)

    @property
    def n_cliques(self) -> int:
        return len(self._cliques)

    # ------------------------------------------------------------------ #
    # Incremental evidence
    # ------------------------------------------------------------------ #

    def absorb(self, evidence: Mapping[str, int]) -> "JunctionTree":
        """Add observations without rebuilding the tree.

        Raises :class:`InferenceError` (and leaves the tree exactly as it
        was) if a variable is unknown, already observed, out of range, or
        the combined evidence has zero probability under the model.
        Returns ``self`` for chaining.
        """
        if _OBS.enabled:
            _OBS.metrics.counter("jtree.absorb.calls").inc()
        ev = {str(k): int(v) for k, v in evidence.items()}
        unknown = set(ev) - set(self._cards)
        if unknown:
            raise InferenceError(f"evidence on unknown nodes {sorted(unknown)}")
        already = set(ev) & set(self._evidence)
        if already:
            raise InferenceError(
                f"variables already observed: {sorted(already)}; retract first"
            )
        for v, s in ev.items():
            if not 0 <= s < self._cards[v]:
                raise InferenceError(
                    f"state {s} out of range for {v!r} (card {self._cards[v]})"
                )
        self._evidence.update(ev)
        self._beliefs = None
        try:
            self._require_calibrated()
        except InferenceError:
            # Roll back so the tree stays usable after bad evidence.
            for v in ev:
                del self._evidence[v]
            self._beliefs = None
            raise
        return self

    def retract(self, variables: Iterable[str]) -> "JunctionTree":
        """Drop observations on ``variables``; calibration reruns lazily."""
        if _OBS.enabled:
            _OBS.metrics.counter("jtree.retract.calls").inc()
        names = [str(v) for v in variables]
        missing = [v for v in names if v not in self._evidence]
        if missing:
            raise InferenceError(f"variables not observed: {sorted(missing)}")
        for v in names:
            del self._evidence[v]
        self._beliefs = None
        return self

    # ------------------------------------------------------------------ #
    # Calibration
    # ------------------------------------------------------------------ #

    def _neighbors(self, i: int) -> list[int]:
        out = []
        for a, b in self._edges:
            if a == i:
                out.append(b)
            elif b == i:
                out.append(a)
        return out

    def _evidence_potentials(self) -> list[DiscreteFactor]:
        """Base potentials with one-hot indicators for current evidence."""
        potentials = list(self._base_potentials)
        for v, s in self._evidence.items():
            one_hot = np.zeros(self._cards[v])
            one_hot[s] = 1.0
            i = self._home[v]
            potentials[i] = potentials[i].product(
                DiscreteFactor([v], [self._cards[v]], one_hot)
            )
        return potentials

    def _require_calibrated(self) -> None:
        if self._beliefs is None:
            self._recalibrate()

    def _recalibrate(self) -> None:
        """Two-pass sum-product message passing over the (fixed) tree."""
        _t0 = _OBS.clock() if _OBS.enabled else None
        n = len(self._cliques)
        potentials = self._evidence_potentials()
        messages: dict[tuple[int, int], DiscreteFactor] = {}

        def send(src: int, dst: int) -> None:
            product = potentials[src]
            for nbr in self._neighbors(src):
                if nbr != dst and (nbr, src) in messages:
                    product = product.product(messages[(nbr, src)])
            sep = self._cliques[src] & self._cliques[dst]
            drop = set(product.variables) - sep
            if drop == set(product.variables):
                # Empty separator (independent components joined by a
                # zero-weight tree edge): the message is the scalar total,
                # carried as a constant factor over one dst variable so
                # the product machinery needs no empty-scope special case.
                scalar = float(product.values.sum())
                v = next(iter(self._cliques[dst]))
                msg = DiscreteFactor(
                    [v], [self._cards[v]], np.full(self._cards[v], scalar)
                )
            elif drop:
                msg = product.marginalize(drop)
            else:
                msg = product
            messages[(src, dst)] = msg

        # Collect toward clique 0, then distribute, via DFS ordering.
        seen = {0}
        stack = [0]
        parent = {0: -1}
        topo = []
        while stack:
            cur = stack.pop()
            topo.append(cur)
            for nbr in self._neighbors(cur):
                if nbr not in seen:
                    seen.add(nbr)
                    parent[nbr] = cur
                    stack.append(nbr)
        if len(topo) != n:
            raise InferenceError("clique tree is disconnected")  # pragma: no cover
        for node in reversed(topo):  # leaves first: collect
            if parent[node] >= 0:
                send(node, parent[node])
        for node in topo:  # root first: distribute
            for nbr in self._neighbors(node):
                if parent.get(nbr) == node:
                    send(node, nbr)

        beliefs = []
        for i in range(n):
            b = potentials[i]
            for nbr in self._neighbors(i):
                b = b.product(messages[(nbr, i)])
            beliefs.append(b)
        if float(beliefs[0].values.sum()) <= 0:
            raise InferenceError("evidence has zero probability under the model")
        self._beliefs = beliefs
        if _t0 is not None:
            _OBS.metrics.counter("jtree.recalibrations").inc()
            _OBS.metrics.histogram("jtree.recalibrate.seconds").observe(
                _OBS.clock() - _t0
            )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def marginal(self, variable: str) -> DiscreteFactor:
        """Posterior marginal ``P(variable | evidence)``."""
        variable = str(variable)
        if variable in self._evidence:
            raise InferenceError(f"{variable!r} is observed")
        self._require_calibrated()
        assert self._beliefs is not None
        for clique, belief in zip(self._cliques, self._beliefs):
            if variable in clique:
                drop = set(belief.variables) - {variable}
                f = belief.marginalize(drop) if drop else belief
                return f.normalize()
        raise InferenceError(f"variable {variable!r} not in any clique")

    def all_marginals(self) -> dict[str, DiscreteFactor]:
        """Every unobserved variable's posterior from one calibration."""
        out = {}
        for clique in self._cliques:
            for v in clique:
                if v not in out and v not in self._evidence:
                    out[v] = self.marginal(v)
        return out

    def log_probability_of_evidence(self) -> float:
        """``ln P(evidence)`` — the calibration's normalizing constant."""
        self._require_calibrated()
        assert self._beliefs is not None
        total = float(self._beliefs[0].values.sum())
        if total <= 0:
            raise InferenceError("evidence has zero probability")
        return float(np.log(total))


# --------------------------------------------------------------------- #
# Construction helpers
# --------------------------------------------------------------------- #


def _triangulate(
    factors: list[DiscreteFactor], variables: list[str]
) -> list[frozenset]:
    """Min-fill elimination; returns the maximal elimination cliques."""
    adj: dict[str, set[str]] = {v: set() for v in variables}
    for f in factors:
        scope = [v for v in f.variables if v in adj]
        for a in scope:
            adj[a] |= set(scope) - {a}
    cliques: list[frozenset] = []
    remaining = set(variables)
    work = {v: set(n) for v, n in adj.items()}
    while remaining:
        best, best_fill = None, None
        for v in remaining:
            nbrs = list(work[v] & remaining)
            fill = sum(
                1
                for i in range(len(nbrs))
                for j in range(i + 1, len(nbrs))
                if nbrs[j] not in work[nbrs[i]]
            )
            if best_fill is None or fill < best_fill:
                best, best_fill = v, fill
        nbrs = work[best] & remaining
        clique = frozenset(nbrs | {best})
        if not any(clique <= c for c in cliques):
            cliques.append(clique)
        # Connect the neighbors (fill-in) and eliminate.
        for a in nbrs:
            work[a] |= nbrs - {a}
        remaining.discard(best)
    # Drop non-maximal cliques that later ones subsume.
    maximal = [c for c in cliques if not any(c < other for other in cliques)]
    return maximal


def _spanning_tree(cliques: list[frozenset]) -> list[tuple[int, int]]:
    """Maximum-weight spanning tree over separator sizes (Prim)."""
    n = len(cliques)
    if n <= 1:
        return []
    in_tree = {0}
    edges: list[tuple[int, int]] = []
    while len(in_tree) < n:
        best = None
        best_w = -1
        for i in in_tree:
            for j in range(n):
                if j in in_tree:
                    continue
                w = len(cliques[i] & cliques[j])
                if w > best_w:
                    best, best_w = (i, j), w
        assert best is not None
        edges.append(best)
        in_tree.add(best[1])
    return edges


def _assign_factors(
    cliques: list[frozenset],
    factors: list[DiscreteFactor],
    cards: Mapping[str, int],
) -> list[DiscreteFactor]:
    """Multiply each factor into one covering clique; seed empties with 1."""
    potentials: list["DiscreteFactor | None"] = [None] * len(cliques)
    for f in factors:
        scope = set(f.variables)
        home = next(
            (i for i, c in enumerate(cliques) if scope <= c),
            None,
        )
        if home is None:
            raise InferenceError(
                f"no clique covers factor scope {sorted(scope)}"
            )  # pragma: no cover - triangulation guarantees coverage
        potentials[home] = f if potentials[home] is None else potentials[home].product(f)
    out = []
    for i, p in enumerate(potentials):
        if p is None:
            # Identity potential over one clique variable keeps shapes sane.
            v = next(iter(cliques[i]))
            p = DiscreteFactor([v], [cards[v]], np.ones(cards[v]))
        out.append(p)
    return out
