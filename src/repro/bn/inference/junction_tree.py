"""Clique-tree (junction-tree) inference for discrete networks.

Variable elimination answers one query per elimination sweep; dComp-style
workloads ask for *every* unobservable service's posterior at once.  A
calibrated clique tree computes all single-variable marginals in two
message-passing sweeps over the tree, after which each query is a cheap
clique marginalization.

Construction follows the classic recipe (Lauritzen & Spiegelhalter):

1. moralize the DAG and triangulate it with min-fill elimination,
   collecting the elimination cliques;
2. keep the maximal cliques and connect them with a maximum-weight
   spanning tree over separator sizes (which satisfies the running-
   intersection property for elimination-ordered cliques);
3. multiply each CPD factor into one clique containing its family;
4. calibrate with sum-product messages over the tree.

The expensive steps — triangulation, spanning tree, factor assignment —
depend only on the *network*, so they run once.  Evidence enters as
one-hot indicator slices multiplied into the home clique's potential,
and :meth:`JunctionTree.absorb` / :meth:`JunctionTree.retract` change
the observed set **incrementally**: every directed sum-product message
is cached, and touching a clique's potential invalidates only the
messages directed *away* from it.  A query then recomputes just the
invalid messages on the path between the touched cliques and the query
clique — messages from untouched subtrees are reused — so the
autonomic manager's per-window evidence churn (absorb a window's
observations, read a handful of marginals, retract) stops paying full
two-sweep recalibrations.  Calibration stays lazy: an absorb/retract
burst pays once, at the next query.

Construct with ``incremental=False`` to disable message reuse — every
query then recomputes the full two-sweep calibration.  That mode exists
as the honest comparator for the incremental-speedup benchmark (and as
a paranoia switch).
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.bn.factors import DiscreteFactor
from repro.exceptions import InferenceError
from repro.obs.runtime import OBS as _OBS


class JunctionTree:
    """A calibrated clique tree over a discrete Bayesian network.

    The tree structure is built once, evidence-free; ``evidence`` given
    here (or later via :meth:`absorb`) only re-triggers (incremental)
    calibration.
    """

    def __init__(
        self,
        network,
        evidence: "Mapping[str, int] | None" = None,
        *,
        incremental: bool = True,
    ):
        from repro.bn.inference.variable_elimination import _network_factors

        self._cards: dict[str, int] = dict(network.cardinalities)
        factors = _network_factors(network)
        variables = [str(n) for n in network.nodes]
        self._cliques = _triangulate(factors, variables)
        self._edges = _spanning_tree(self._cliques)
        self._base_potentials = _assign_factors(self._cliques, factors, self._cards)
        self._nbrs: list[list[int]] = [[] for _ in self._cliques]
        for a, b in self._edges:
            self._nbrs[a].append(b)
            self._nbrs[b].append(a)
        # Home clique for each variable's evidence indicator.
        self._home: dict[str, int] = {}
        for v in variables:
            self._home[v] = next(i for i, c in enumerate(self._cliques) if v in c)
        self._evidence: dict[str, int] = {}
        self._incremental = bool(incremental)
        # Potentials with current evidence folded in, the directed
        # message cache, and lazily computed clique beliefs.
        self._potentials: list[DiscreteFactor] = list(self._base_potentials)
        self._messages: dict[tuple[int, int], DiscreteFactor] = {}
        self._beliefs: dict[int, DiscreteFactor] = {}
        # True whenever potentials changed since the last pull; the next
        # pull then counts (and times) as one recalibration.
        self._dirty = True
        if evidence:
            self.absorb(evidence)
        else:
            # Validate the evidence-free model once (mirrors the eager
            # calibration the tree historically performed on build).
            self._belief(0)

    # ------------------------------------------------------------------ #

    @property
    def evidence(self) -> dict[str, int]:
        """The currently absorbed evidence (a copy)."""
        return dict(self._evidence)

    @property
    def cliques(self) -> tuple[frozenset, ...]:
        return tuple(self._cliques)

    @property
    def n_cliques(self) -> int:
        return len(self._cliques)

    # ------------------------------------------------------------------ #
    # Incremental evidence
    # ------------------------------------------------------------------ #

    def _indicator(self, v: str, s: int) -> DiscreteFactor:
        one_hot = np.zeros(self._cards[v])
        one_hot[s] = 1.0
        return DiscreteFactor([v], [self._cards[v]], one_hot)

    def _rebuild_potential(self, i: int) -> None:
        """Recompute clique ``i``'s potential from base × its evidence."""
        p = self._base_potentials[i]
        for v, s in self._evidence.items():
            if self._home[v] == i:
                p = p.product(self._indicator(v, s))
        self._potentials[i] = p

    def _touch(self, i: int) -> None:
        """Invalidate everything downstream of a changed potential.

        A directed message ``(u → v)`` summarizes the side of the tree
        behind ``u``; changing clique ``i`` invalidates exactly the
        messages directed *away* from ``i`` (one per edge), while every
        message directed toward ``i`` stays valid.  Beliefs all depend
        on the full evidence, so the belief cache clears wholesale.
        """
        self._beliefs.clear()
        self._dirty = True
        stack = [(i, -1)]
        while stack:
            node, parent = stack.pop()
            for nbr in self._nbrs[node]:
                if nbr != parent:
                    self._messages.pop((node, nbr), None)
                    stack.append((nbr, node))

    def absorb(self, evidence: Mapping[str, int]) -> "JunctionTree":
        """Add observations without rebuilding the tree.

        Raises :class:`InferenceError` (and leaves the tree exactly as it
        was) if a variable is unknown, already observed, out of range, or
        the combined evidence has zero probability under the model.
        Returns ``self`` for chaining.
        """
        if _OBS.enabled:
            _OBS.metrics.counter("jtree.absorb.calls").inc()
        ev = {str(k): int(v) for k, v in evidence.items()}
        unknown = set(ev) - set(self._cards)
        if unknown:
            raise InferenceError(f"evidence on unknown nodes {sorted(unknown)}")
        already = set(ev) & set(self._evidence)
        if already:
            raise InferenceError(
                f"variables already observed: {sorted(already)}; retract first"
            )
        for v, s in ev.items():
            if not 0 <= s < self._cards[v]:
                raise InferenceError(
                    f"state {s} out of range for {v!r} (card {self._cards[v]})"
                )
        homes = {self._home[v] for v in ev}
        saved_potentials = {i: self._potentials[i] for i in homes}
        saved_messages = dict(self._messages)
        saved_beliefs = dict(self._beliefs)
        saved_dirty = self._dirty
        self._evidence.update(ev)
        for v, s in ev.items():
            i = self._home[v]
            self._potentials[i] = self._potentials[i].product(
                self._indicator(v, s)
            )
        for i in homes:
            self._touch(i)
        try:
            # Any single belief sums to P(evidence); pulling one both
            # validates the new observations and reuses every message
            # from subtrees the evidence did not touch.
            check = next(iter(homes))
            if float(self._belief(check).values.sum()) <= 0:
                raise InferenceError(
                    "evidence has zero probability under the model"
                )
        except InferenceError:
            # Roll back so the tree stays usable after bad evidence.
            for v in ev:
                del self._evidence[v]
            for i, p in saved_potentials.items():
                self._potentials[i] = p
            self._messages = saved_messages
            self._beliefs = saved_beliefs
            self._dirty = saved_dirty
            raise
        return self

    def retract(self, variables: Iterable[str]) -> "JunctionTree":
        """Drop observations on ``variables``; calibration reruns lazily
        (and incrementally) at the next query."""
        if _OBS.enabled:
            _OBS.metrics.counter("jtree.retract.calls").inc()
        names = [str(v) for v in variables]
        missing = [v for v in names if v not in self._evidence]
        if missing:
            raise InferenceError(f"variables not observed: {sorted(missing)}")
        for v in names:
            del self._evidence[v]
        homes = {self._home[v] for v in names}
        for i in homes:
            self._rebuild_potential(i)
            self._touch(i)
        return self

    # ------------------------------------------------------------------ #
    # Calibration (lazy, message-cached)
    # ------------------------------------------------------------------ #

    def _send(self, src: int, dst: int) -> None:
        """Compute and cache the sum-product message ``src → dst``.

        All messages toward ``src`` from its other neighbors must
        already be cached (the pull loop guarantees leaves-first order).
        """
        product = self._potentials[src]
        for nbr in self._nbrs[src]:
            if nbr != dst:
                product = product.product(self._messages[(nbr, src)])
        sep = self._cliques[src] & self._cliques[dst]
        drop = set(product.variables) - sep
        if drop == set(product.variables):
            # Empty separator (independent components joined by a
            # zero-weight tree edge): the message is the scalar total,
            # carried as a constant factor over one dst variable so
            # the product machinery needs no empty-scope special case.
            scalar = float(product.values.sum())
            v = next(iter(self._cliques[dst]))
            msg = DiscreteFactor(
                [v], [self._cards[v]], np.full(self._cards[v], scalar)
            )
        elif drop:
            msg = product.marginalize(drop)
        else:
            msg = product
        self._messages[(src, dst)] = msg

    def _pull(self, root: int) -> int:
        """Ensure every message directed toward ``root`` is cached.

        Returns the number of messages actually recomputed — cached
        messages from untouched subtrees are reused, which is the whole
        point of incremental recalibration.
        """
        was_dirty = self._dirty
        _t0 = _OBS.clock() if _OBS.enabled and was_dirty else None
        if not self._incremental:
            self._messages.clear()
            self._beliefs.clear()
        # Iterative leaves-first ordering of the edges directed at root.
        order: list[tuple[int, int]] = []
        stack = [(root, -1)]
        while stack:
            node, parent = stack.pop()
            for nbr in self._nbrs[node]:
                if nbr != parent:
                    order.append((nbr, node))
                    stack.append((nbr, node))
        computed = 0
        reused = 0
        for src, dst in reversed(order):
            if (src, dst) not in self._messages:
                self._send(src, dst)
                computed += 1
            else:
                reused += 1
        if was_dirty:
            self._dirty = False
            if _t0 is not None:
                _OBS.metrics.counter("jtree.recalibrations").inc()
                _OBS.metrics.counter("jtree.messages.computed").inc(computed)
                _OBS.metrics.counter("jtree.messages.reused").inc(reused)
                _OBS.metrics.histogram("jtree.recalibrate.seconds").observe(
                    _OBS.clock() - _t0
                )
        return computed

    def _belief(self, i: int) -> DiscreteFactor:
        """Unnormalized clique belief ``P(clique_i, evidence)``."""
        cached = self._beliefs.get(i)
        if cached is not None:
            return cached
        self._pull(i)
        b = self._potentials[i]
        for nbr in self._nbrs[i]:
            b = b.product(self._messages[(nbr, i)])
        self._beliefs[i] = b
        return b

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def marginal(self, variable: str) -> DiscreteFactor:
        """Posterior marginal ``P(variable | evidence)``."""
        variable = str(variable)
        if variable in self._evidence:
            raise InferenceError(f"{variable!r} is observed")
        for i, clique in enumerate(self._cliques):
            if variable in clique:
                belief = self._belief(i)
                drop = set(belief.variables) - {variable}
                f = belief.marginalize(drop) if drop else belief
                return f.normalize()
        raise InferenceError(f"variable {variable!r} not in any clique")

    def all_marginals(self) -> dict[str, DiscreteFactor]:
        """Every unobserved variable's posterior from one calibration."""
        out = {}
        for clique in self._cliques:
            for v in clique:
                if v not in out and v not in self._evidence:
                    out[v] = self.marginal(v)
        return out

    def log_probability_of_evidence(self) -> float:
        """``ln P(evidence)`` — the calibration's normalizing constant."""
        total = float(self._belief(0).values.sum())
        if total <= 0:
            raise InferenceError("evidence has zero probability")
        return float(np.log(total))


# --------------------------------------------------------------------- #
# Construction helpers
# --------------------------------------------------------------------- #


def _triangulate(
    factors: list[DiscreteFactor], variables: list[str]
) -> list[frozenset]:
    """Min-fill elimination; returns the maximal elimination cliques."""
    adj: dict[str, set[str]] = {v: set() for v in variables}
    for f in factors:
        scope = [v for v in f.variables if v in adj]
        for a in scope:
            adj[a] |= set(scope) - {a}
    cliques: list[frozenset] = []
    remaining = set(variables)
    work = {v: set(n) for v, n in adj.items()}
    while remaining:
        best, best_fill = None, None
        for v in remaining:
            nbrs = list(work[v] & remaining)
            fill = sum(
                1
                for i in range(len(nbrs))
                for j in range(i + 1, len(nbrs))
                if nbrs[j] not in work[nbrs[i]]
            )
            if best_fill is None or fill < best_fill:
                best, best_fill = v, fill
        nbrs = work[best] & remaining
        clique = frozenset(nbrs | {best})
        if not any(clique <= c for c in cliques):
            cliques.append(clique)
        # Connect the neighbors (fill-in) and eliminate.
        for a in nbrs:
            work[a] |= nbrs - {a}
        remaining.discard(best)
    # Drop non-maximal cliques that later ones subsume.
    maximal = [c for c in cliques if not any(c < other for other in cliques)]
    return maximal


def _spanning_tree(cliques: list[frozenset]) -> list[tuple[int, int]]:
    """Maximum-weight spanning tree over separator sizes (Prim)."""
    n = len(cliques)
    if n <= 1:
        return []
    in_tree = {0}
    edges: list[tuple[int, int]] = []
    while len(in_tree) < n:
        best = None
        best_w = -1
        for i in in_tree:
            for j in range(n):
                if j in in_tree:
                    continue
                w = len(cliques[i] & cliques[j])
                if w > best_w:
                    best, best_w = (i, j), w
        assert best is not None
        edges.append(best)
        in_tree.add(best[1])
    return edges


def _assign_factors(
    cliques: list[frozenset],
    factors: list[DiscreteFactor],
    cards: Mapping[str, int],
) -> list[DiscreteFactor]:
    """Multiply each factor into one covering clique; seed empties with 1."""
    potentials: list["DiscreteFactor | None"] = [None] * len(cliques)
    for f in factors:
        scope = set(f.variables)
        home = next(
            (i for i, c in enumerate(cliques) if scope <= c),
            None,
        )
        if home is None:
            raise InferenceError(
                f"no clique covers factor scope {sorted(scope)}"
            )  # pragma: no cover - triangulation guarantees coverage
        potentials[home] = f if potentials[home] is None else potentials[home].product(f)
    out = []
    for i, p in enumerate(potentials):
        if p is None:
            # Identity potential over one clique variable keeps shapes sane.
            v = next(iter(cliques[i]))
            p = DiscreteFactor([v], [cards[v]], np.ones(cards[v]))
        out.append(p)
    return out
