"""Dataset-scoring helpers around the paper's accuracy metric.

The paper reports *data-fitting accuracy* as ``log10 p(TestData | BN)``
(Section 4.1).  These wrappers exist so benchmark code reads like the
paper's text.
"""

from __future__ import annotations

import numpy as np

from repro.bn.data import Dataset


def log10_likelihood(network, data: Dataset) -> float:
    """``log10 p(data | network)`` — the Figure 3/4 accuracy metric."""
    return network.log10_likelihood(data)


def mean_log_likelihood(network, data: Dataset) -> float:
    """Per-row natural-log likelihood; size-independent model comparison."""
    return float(network.per_row_log_likelihood(data).mean())


def holdout_score(network, train: Dataset, test: Dataset) -> dict:
    """Train/test scoring summary used by EXPERIMENTS.md tables."""
    return {
        "train_log10": network.log10_likelihood(train),
        "test_log10": network.log10_likelihood(test),
        "test_mean_ll": mean_log_likelihood(network, test),
        "n_parameters": network.n_parameters,
    }
