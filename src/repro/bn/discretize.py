"""Discretization of continuous measurements.

The Section-5 models are *discrete* KERT-BNs (the paper gives two
reasons: plenty of data, and Matlab BNT's inability to express the
nonlinear deterministic CPD).  :class:`Discretizer` turns continuous
elapsed-time / response-time columns into bin indices, remembers the bin
edges and centers, and can map posteriors back to original units.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.bn.data import Dataset
from repro.exceptions import DataError


class Discretizer:
    """Per-column quantile or uniform binning fitted on training data."""

    def __init__(self, n_bins: int = 5, strategy: str = "quantile"):
        if n_bins < 2:
            raise DataError(f"n_bins must be >= 2, got {n_bins}")
        if strategy not in ("quantile", "uniform"):
            raise DataError(f"strategy must be 'quantile' or 'uniform', got {strategy!r}")
        self.n_bins = int(n_bins)
        self.strategy = strategy
        self._edges: dict[str, np.ndarray] = {}
        self._centers: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(
        cls,
        edges: "Mapping[str, Iterable[float]]",
        centers: "Mapping[str, Iterable[float]] | None" = None,
        strategy: str = "quantile",
    ) -> "Discretizer":
        """Build a fitted discretizer directly from per-column bin edges.

        This is the public counterpart of :meth:`fit` for edges that come
        from elsewhere (a persisted bundle, a hand-written spec).  Each
        column needs at least two edges (one bin — single-bin columns are
        legal here even though :meth:`fit` always produces two or more);
        ``centers`` defaults to bin midpoints.
        """
        edge_map = {str(c): np.asarray(v, dtype=float) for c, v in edges.items()}
        if not edge_map:
            raise DataError("from_edges needs at least one column")
        for col, e in edge_map.items():
            if e.ndim != 1 or e.size < 2:
                raise DataError(
                    f"column {col!r} needs >= 2 edges (got shape {e.shape})"
                )
            if not np.all(np.isfinite(e)):
                raise DataError(f"column {col!r} has non-finite edges")
            if not np.all(np.diff(e) > 0):
                raise DataError(f"column {col!r} edges must be strictly increasing")
        center_map: dict[str, np.ndarray] = {}
        for col, e in edge_map.items():
            if centers is not None and col in centers:
                c = np.asarray(centers[col], dtype=float)
                if c.shape != (e.size - 1,):
                    raise DataError(
                        f"column {col!r} has {e.size - 1} bins but "
                        f"{c.size} centers"
                    )
            else:
                c = 0.5 * (e[:-1] + e[1:])
            center_map[col] = c
        if centers is not None:
            extra = set(map(str, centers)) - set(edge_map)
            if extra:
                raise DataError(f"centers name unknown columns {sorted(extra)}")
        disc = cls(
            n_bins=max(2, max(e.size - 1 for e in edge_map.values())),
            strategy=strategy,
        )
        disc._edges = edge_map
        disc._centers = center_map
        return disc

    @property
    def fitted(self) -> bool:
        return bool(self._edges)

    @property
    def columns(self) -> tuple[str, ...]:
        return tuple(self._edges)

    def edges(self, column: str) -> np.ndarray:
        self._check_fitted(column)
        return self._edges[column]

    def centers(self, column: str) -> np.ndarray:
        """Representative value per bin (empirical bin means where
        available, midpoints otherwise)."""
        self._check_fitted(column)
        return self._centers[column]

    def cardinality(self, column: str) -> int:
        self._check_fitted(column)
        return self._edges[column].size - 1

    def cardinalities(self) -> dict[str, int]:
        return {c: self.cardinality(c) for c in self._edges}

    def _check_fitted(self, column: str) -> None:
        if column not in self._edges:
            raise DataError(
                f"discretizer not fitted for column {column!r}; "
                f"have {list(self._edges)}"
            )

    # ------------------------------------------------------------------ #

    def fit(self, data: Dataset, columns: "Iterable[str] | None" = None) -> "Discretizer":
        """Learn bin edges (and empirical centers) from training data."""
        for col in (columns if columns is not None else data.columns):
            x = np.asarray(data[col], dtype=float)
            if x.size < 2:
                raise DataError(f"column {col!r} too small to discretize")
            lo, hi = float(x.min()), float(x.max())
            if self.strategy == "uniform":
                edges = np.linspace(lo, hi, self.n_bins + 1)
            else:
                qs = np.linspace(0.0, 1.0, self.n_bins + 1)
                edges = np.quantile(x, qs)
            # Deduplicate degenerate edges (heavy ties), keep >= 2 bins by
            # padding when the column is (nearly) constant.
            edges = np.unique(edges)
            if edges.size < 3:
                span = max(hi - lo, 1.0) * 1e-6
                edges = np.array([lo - span, (lo + hi) / 2.0, hi + span])
            # Widen the outer edges so unseen test extremes still bin.
            edges = edges.astype(float)
            self._edges[col] = edges
            idx = self._bin(x, edges)
            centers = np.empty(edges.size - 1)
            for b in range(edges.size - 1):
                members = x[idx == b]
                centers[b] = members.mean() if members.size else 0.5 * (edges[b] + edges[b + 1])
            self._centers[col] = centers
        return self

    @staticmethod
    def _bin(x: np.ndarray, edges: np.ndarray) -> np.ndarray:
        idx = np.digitize(x, edges[1:-1])
        return np.clip(idx, 0, edges.size - 2)

    def transform(self, data: Dataset, columns: "Iterable[str] | None" = None) -> Dataset:
        """Map continuous columns to bin indices (ints)."""
        cols = list(columns) if columns is not None else list(self._edges)
        out = {}
        for col in cols:
            self._check_fitted(col)
            out[col] = self._bin(np.asarray(data[col], dtype=float), self._edges[col])
        return Dataset(out)

    def fit_transform(self, data: Dataset, columns: "Iterable[str] | None" = None) -> Dataset:
        return self.fit(data, columns).transform(data, columns)

    def inverse_value(self, column: str, state: int) -> float:
        """Bin index → representative continuous value."""
        centers = self.centers(column)
        if not 0 <= state < centers.size:
            raise DataError(f"state {state} out of range for {column!r}")
        return float(centers[state])

    def expectation(self, column: str, pmf: np.ndarray) -> float:
        """Expected continuous value of a pmf over the column's bins."""
        centers = self.centers(column)
        pmf = np.asarray(pmf, dtype=float)
        if pmf.shape != centers.shape:
            raise DataError(
                f"pmf length {pmf.size} != {centers.size} bins for {column!r}"
            )
        return float(np.dot(pmf, centers))

    def state_of(self, column: str, value: float) -> int:
        """Continuous value → bin index (clipped to the support)."""
        self._check_fitted(column)
        return int(self._bin(np.asarray([value], dtype=float), self._edges[column])[0])
