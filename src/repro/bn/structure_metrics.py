"""Structure-comparison metrics.

KERT-BN's pitch is that the workflow already *is* the right structure;
these metrics quantify how close a learned (NRT-BN) structure gets to
that reference, and at what data cost:

- **skeleton precision/recall/F1** — undirected edge agreement;
- **directed precision/recall** — edge agreement including orientation;
- **SHD** (structural Hamming distance) — additions + deletions +
  reorientations needed to turn one DAG into the other.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bn.dag import DAG
from repro.exceptions import GraphError


@dataclass(frozen=True)
class StructureComparison:
    """Edge-level agreement between a learned DAG and a reference DAG."""

    n_reference_edges: int
    n_learned_edges: int
    skeleton_tp: int
    directed_tp: int
    shd: int

    @property
    def skeleton_precision(self) -> float:
        return self.skeleton_tp / self.n_learned_edges if self.n_learned_edges else 1.0

    @property
    def skeleton_recall(self) -> float:
        return self.skeleton_tp / self.n_reference_edges if self.n_reference_edges else 1.0

    @property
    def skeleton_f1(self) -> float:
        p, r = self.skeleton_precision, self.skeleton_recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def directed_precision(self) -> float:
        return self.directed_tp / self.n_learned_edges if self.n_learned_edges else 1.0

    @property
    def directed_recall(self) -> float:
        return self.directed_tp / self.n_reference_edges if self.n_reference_edges else 1.0

    def row(self) -> dict:
        return {
            "skeleton_f1": self.skeleton_f1,
            "skeleton_precision": self.skeleton_precision,
            "skeleton_recall": self.skeleton_recall,
            "directed_recall": self.directed_recall,
            "shd": self.shd,
        }


def compare_structures(learned: DAG, reference: DAG) -> StructureComparison:
    """Compare two DAGs over the same node set."""
    if set(map(str, learned.nodes)) != set(map(str, reference.nodes)):
        raise GraphError("structures must share the same node set")
    learned_dir = {(str(u), str(v)) for u, v in learned.edges}
    ref_dir = {(str(u), str(v)) for u, v in reference.edges}
    learned_skel = {frozenset(e) for e in learned_dir}
    ref_skel = {frozenset(e) for e in ref_dir}

    skeleton_tp = len(learned_skel & ref_skel)
    directed_tp = len(learned_dir & ref_dir)

    # SHD: missing skeleton edges + extra skeleton edges + shared-skeleton
    # edges with the wrong orientation.
    missing = len(ref_skel - learned_skel)
    extra = len(learned_skel - ref_skel)
    misoriented = skeleton_tp - len(
        {e for e in learned_dir if e in ref_dir}
    )
    shd = missing + extra + misoriented

    return StructureComparison(
        n_reference_edges=len(ref_dir),
        n_learned_edges=len(learned_dir),
        skeleton_tp=skeleton_tp,
        directed_tp=directed_tp,
        shd=shd,
    )


def knowledge_recovery(learned: DAG, workflow, response: str = "D") -> StructureComparison:
    """Compare a learned structure against the workflow-derived KERT-BN
    structure (the 'ground truth' domain knowledge provides for free)."""
    from repro.workflow.structure import kert_bn_structure

    reference = kert_bn_structure(workflow, response=response)
    return compare_structures(learned, reference)
