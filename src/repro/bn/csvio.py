"""CSV interchange for monitored datasets.

Management servers commonly export monitoring windows as CSV; these
helpers move :class:`~repro.bn.data.Dataset` instances in and out of that
format (header row = column names; one monitored data point per line;
empty cells load as NaN, the missing-data marker dComp and EM consume).
"""

from __future__ import annotations

import csv
import io

import numpy as np

from repro.bn.data import Dataset
from repro.exceptions import DataError


def dataset_to_csv(data: Dataset, path: str) -> None:
    """Write ``data`` to ``path`` (NaN cells become empty)."""
    with open(path, "w", newline="") as fh:
        _write(data, fh)


def dataset_to_csv_string(data: Dataset) -> str:
    buf = io.StringIO()
    _write(data, buf)
    return buf.getvalue()


def _write(data: Dataset, fh) -> None:
    writer = csv.writer(fh)
    writer.writerow(data.columns)
    arrays = [np.asarray(data[c], dtype=float) for c in data.columns]
    # Missing values are written as the literal "nan" (not an empty cell):
    # a lone empty cell in a single-column file is indistinguishable from a
    # blank line.  The reader accepts both spellings.
    for i in range(data.n_rows):
        writer.writerow(
            ["nan" if np.isnan(a[i]) else repr(float(a[i])) for a in arrays]
        )


def dataset_from_csv(path: str) -> Dataset:
    """Read a dataset from ``path``; empty cells become NaN."""
    with open(path, newline="") as fh:
        return _read(fh)


def dataset_from_csv_string(text: str) -> Dataset:
    return _read(io.StringIO(text))


def _read(fh) -> Dataset:
    reader = csv.reader(fh)
    try:
        header = next(reader)
    except StopIteration:
        raise DataError("CSV file is empty") from None
    header = [h.strip() for h in header]
    if not header or any(not h for h in header):
        raise DataError("CSV header must name every column")
    rows = []
    for lineno, row in enumerate(reader, start=2):
        if not row or all(not cell.strip() for cell in row):
            continue
        if len(row) != len(header):
            raise DataError(
                f"line {lineno}: expected {len(header)} cells, got {len(row)}"
            )
        try:
            rows.append(
                [float(cell) if cell.strip() else float("nan") for cell in row]
            )
        except ValueError as exc:
            raise DataError(f"line {lineno}: {exc}") from None
    if not rows:
        raise DataError("CSV file has a header but no data rows")
    array = np.asarray(rows, dtype=float)
    return Dataset.from_array(array, header)
