"""Bayesian (conjugate) linear-Gaussian parameter learning.

The paper's fast-reconstruction regime hands the learner 36 data points;
plain least squares is noisy there.  The standard conjugate treatment —
a Normal-Inverse-Gamma prior over (coefficients, variance) — yields a
posterior-mean CPD with ridge-style shrinkage toward zero coefficients
and a tempered variance estimate, at the same O(N·p²) cost.  It is the
"Bayesian method" alternative the paper's Section 3.4 mentions next to
maximum likelihood (reference [14]).

With ``prior_strength → 0`` the fit reduces to MLE; tests assert both
the limit and the small-sample robustness gain.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.bn.cpd.linear_gaussian import LinearGaussianCPD
from repro.bn.dag import DAG
from repro.bn.data import Dataset
from repro.bn.network import GaussianBayesianNetwork
from repro.exceptions import LearningError


def fit_linear_gaussian_bayes(
    data: Dataset,
    variable: str,
    parents: Iterable[str] = (),
    prior_strength: float = 1.0,
    prior_a: float = 2.0,
    prior_b: float = 0.1,
    min_variance: float = 1e-9,
) -> LinearGaussianCPD:
    """Posterior-mean linear-Gaussian CPD under a NIG prior.

    Prior: ``w ~ N(0, σ²/λ I)`` (``λ = prior_strength``; the intercept is
    left effectively unpenalized), ``σ² ~ InvGamma(a, b)``.

    Posterior means: ``w* = (XᵀX + λI')⁻¹ Xᵀy`` and
    ``σ²* = (b + RSS*/2 + shrinkage/2) / (a + n/2 − 1)``.
    """
    parents = tuple(parents)
    if prior_strength < 0:
        raise LearningError("prior_strength must be >= 0")
    if prior_a <= 1.0 or prior_b <= 0:
        raise LearningError("need prior_a > 1 and prior_b > 0")
    y = np.asarray(data[variable], dtype=float)
    n = y.size
    if n == 0:
        raise LearningError(f"no rows to fit {variable!r}")
    X = np.column_stack(
        [np.ones(n)] + [np.asarray(data[p], dtype=float) for p in parents]
    )
    p = X.shape[1]
    penalty = np.eye(p) * prior_strength
    penalty[0, 0] = 1e-8  # do not shrink the intercept
    gram = X.T @ X + penalty
    w = np.linalg.solve(gram, X.T @ y)
    resid = y - X @ w
    rss = float(resid @ resid)
    shrink = float(w @ penalty @ w)
    a_post = prior_a + 0.5 * n
    b_post = prior_b + 0.5 * (rss + shrink)
    var = max(float(b_post / (a_post - 1.0)), min_variance)
    return LinearGaussianCPD(variable, float(w[0]), w[1:], var, parents)


def fit_gaussian_network_bayes(
    dag: DAG,
    data: Dataset,
    prior_strength: float = 1.0,
    **kwargs,
) -> GaussianBayesianNetwork:
    """Bayesian fit of every node in ``dag``."""
    cpds = [
        fit_linear_gaussian_bayes(
            data,
            str(node),
            tuple(map(str, dag.parents(node))),
            prior_strength=prior_strength,
            **kwargs,
        )
        for node in dag.nodes
    ]
    return GaussianBayesianNetwork(dag, cpds)
