"""Maximum-likelihood (and Dirichlet-smoothed) parameter estimation.

Each ``fit_*`` function is a *local* computation over the child column
and its parent columns only — the decentralizable unit of Section 3.4.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.bn.cpd.linear_gaussian import LinearGaussianCPD
from repro.bn.cpd.tabular import TabularCPD
from repro.bn.dag import DAG
from repro.bn.data import Dataset
from repro.bn.network import DiscreteBayesianNetwork, GaussianBayesianNetwork
from repro.exceptions import LearningError


def fit_linear_gaussian(
    data: Dataset,
    variable: str,
    parents: Iterable[str] = (),
    min_variance: float = 1e-9,
    ridge: float = 1e-10,
    relative_variance_floor: float = 1e-3,
) -> LinearGaussianCPD:
    """Least-squares fit of ``X | parents ~ N(b0 + w·pa, σ²)``.

    A vanishing ``ridge`` keeps the normal equations solvable when parent
    columns are collinear (e.g. two services whose delays are perfectly
    correlated in a short window).  σ² is floored at ``min_variance`` and
    at ``relative_variance_floor`` times the child's marginal variance:
    with tiny training windows a regression on several parents can
    interpolate the sample almost exactly, and an (effectively) zero
    residual variance would make the model infinitely confident — and
    catastrophically wrong on test data.
    """
    parents = tuple(parents)
    y = np.asarray(data[variable], dtype=float)
    n = y.size
    if n == 0:
        raise LearningError(f"no rows to fit {variable!r}")
    marginal_var = float(y.var())
    floor = max(min_variance, relative_variance_floor * marginal_var)
    if not parents:
        mu = float(y.mean())
        return LinearGaussianCPD(variable, mu, (), max(marginal_var, min_variance), ())
    X = np.column_stack([np.ones(n)] + [np.asarray(data[p], dtype=float) for p in parents])
    gram = X.T @ X + ridge * np.eye(X.shape[1])
    beta = np.linalg.solve(gram, X.T @ y)
    resid = y - X @ beta
    var = max(float(np.mean(resid * resid)), floor)
    return LinearGaussianCPD(variable, float(beta[0]), beta[1:], var, parents)


def fit_tabular(
    data: Dataset,
    variable: str,
    cardinality: int,
    parents: Iterable[str] = (),
    parent_cardinalities: Iterable[int] = (),
    alpha: float = 1.0,
) -> TabularCPD:
    """Dirichlet-smoothed count estimate of a discrete CPD.

    ``alpha`` is the symmetric pseudo-count (``alpha=0`` is pure MLE; the
    default 1 is the Bayesian/Laplace estimate of the paper's
    reference [14]).  Counting is vectorized with ``np.add.at`` on the
    raveled (child, parent-config) index.
    """
    parents = tuple(parents)
    parent_cards = tuple(int(c) for c in parent_cardinalities)
    if len(parents) != len(parent_cards):
        raise LearningError("parents and parent_cardinalities length mismatch")
    cardinality = int(cardinality)
    child = np.asarray(data[variable], dtype=int)
    if child.size and (child.min() < 0 or child.max() >= cardinality):
        raise LearningError(
            f"{variable!r} has states outside [0, {cardinality})"
        )
    n_configs = int(np.prod(parent_cards)) if parents else 1
    counts = np.full((cardinality, n_configs), float(alpha))
    if parents:
        config = np.zeros(child.size, dtype=np.int64)
        for p, c in zip(parents, parent_cards):
            col = np.asarray(data[p], dtype=int)
            if col.size and (col.min() < 0 or col.max() >= c):
                raise LearningError(f"parent {p!r} has states outside [0, {c})")
            config = config * c + col
        np.add.at(counts, (child, config), 1.0)
    else:
        np.add.at(counts, (child, np.zeros(child.size, dtype=int)), 1.0)
    totals = counts.sum(axis=0)
    if alpha == 0 and np.any(totals == 0):
        # Unseen parent configurations get a uniform column under pure MLE.
        counts[:, totals == 0] = 1.0
        totals = counts.sum(axis=0)
    table = counts / totals
    return TabularCPD(
        variable,
        cardinality,
        table.reshape((cardinality, *parent_cards)),
        parents,
        parent_cards,
    )


def fit_gaussian_network(
    dag: DAG, data: Dataset, min_variance: float = 1e-9
) -> GaussianBayesianNetwork:
    """Fit every node of ``dag`` with a linear-Gaussian CPD."""
    cpds = [
        fit_linear_gaussian(data, str(node), tuple(map(str, dag.parents(node))),
                            min_variance=min_variance)
        for node in dag.nodes
    ]
    return GaussianBayesianNetwork(dag, cpds)


def fit_discrete_network(
    dag: DAG,
    data: Dataset,
    cardinalities: Mapping[str, int],
    alpha: float = 1.0,
) -> DiscreteBayesianNetwork:
    """Fit every node of ``dag`` with a tabular CPD."""
    cpds = []
    for node in dag.nodes:
        node = str(node)
        parents = tuple(map(str, dag.parents(node)))
        cpds.append(
            fit_tabular(
                data,
                node,
                cardinalities[node],
                parents,
                tuple(cardinalities[p] for p in parents),
                alpha=alpha,
            )
        )
    return DiscreteBayesianNetwork(dag, cpds)
