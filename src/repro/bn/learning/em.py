"""Expectation–maximization for Gaussian networks with missing data.

Section 5.1 mentions "full blown fill-in methods (like Expectation
Maximization)" as the heavyweight alternative dComp avoids.  This module
implements that alternative so the comparison is runnable: given a
dataset whose missing entries are ``NaN``, EM alternates

- **E-step** — for each distinct missingness pattern, condition the
  current joint Gaussian on the observed coordinates and accumulate the
  expected first and second moments of the missing ones;
- **M-step** — refit every linear-Gaussian CPD from the expected moment
  matrices (regression on second moments instead of raw rows).
"""

from __future__ import annotations

import math

import numpy as np

from repro.bn.cpd.linear_gaussian import LinearGaussianCPD
from repro.bn.dag import DAG
from repro.bn.data import Dataset
from repro.bn.network import GaussianBayesianNetwork
from repro.bn.inference.gaussian import joint_gaussian
from repro.bn.learning.mle import fit_gaussian_network
from repro.exceptions import LearningError


def _expected_moments(
    network: GaussianBayesianNetwork, array: np.ndarray, names: list[str]
) -> tuple[np.ndarray, np.ndarray, float]:
    """E-step: expected Σx and Σxxᵀ under the current model.

    Rows are grouped by missingness pattern so each pattern pays one
    Gaussian conditioning, not one per row.
    """
    order, mean, cov = joint_gaussian(network)
    perm = [names.index(v) for v in order]
    data = array[:, perm]  # columns now follow the joint's variable order
    n, k = data.shape
    m1 = np.zeros(k)
    m2 = np.zeros((k, k))
    miss = np.isnan(data)
    patterns = {}
    for row, pattern in enumerate(map(tuple, miss)):
        patterns.setdefault(pattern, []).append(row)
    for pattern, rows in patterns.items():
        rows = np.asarray(rows)
        missing = np.flatnonzero(pattern)
        observed = np.flatnonzero(~np.asarray(pattern))
        obs_vals = data[np.ix_(rows, observed)]
        if missing.size == 0:
            m1[observed] += obs_vals.sum(axis=0)
            m2[np.ix_(observed, observed)] += obs_vals.T @ obs_vals
            continue
        if observed.size == 0:
            # Fully missing rows contribute the prior moments.
            m1 += rows.size * mean
            m2 += rows.size * (cov + np.outer(mean, mean))
            continue
        s_oo = cov[np.ix_(observed, observed)] + 1e-12 * np.eye(observed.size)
        s_mo = cov[np.ix_(missing, observed)]
        gain = np.linalg.solve(s_oo, s_mo.T).T  # (n_miss, n_obs)
        resid = obs_vals - mean[observed]
        mu_m = mean[missing] + resid @ gain.T  # (rows, n_miss)
        sig_m = cov[np.ix_(missing, missing)] - gain @ s_mo.T
        sig_m = 0.5 * (sig_m + sig_m.T)
        # First moments.
        m1[observed] += obs_vals.sum(axis=0)
        m1[missing] += mu_m.sum(axis=0)
        # Second moments.
        m2[np.ix_(observed, observed)] += obs_vals.T @ obs_vals
        m2[np.ix_(missing, observed)] += mu_m.T @ obs_vals
        m2[np.ix_(observed, missing)] += obs_vals.T @ mu_m
        m2[np.ix_(missing, missing)] += mu_m.T @ mu_m + rows.size * sig_m
    # Return moments in the caller's (names) order.
    inv = np.argsort(perm)
    return m1[inv], m2[np.ix_(inv, inv)], float(n)


def _refit_from_moments(
    dag: DAG, names: list[str], m1: np.ndarray, m2: np.ndarray, n: float,
    min_variance: float = 1e-9,
) -> GaussianBayesianNetwork:
    """M-step: per-node regression from expected moments."""
    index = {v: i for i, v in enumerate(names)}
    mean = m1 / n
    second = m2 / n
    cov = second - np.outer(mean, mean)
    cpds = []
    for node in dag.nodes:
        node = str(node)
        parents = tuple(map(str, dag.parents(node)))
        i = index[node]
        if not parents:
            cpds.append(
                LinearGaussianCPD(node, float(mean[i]), (), max(float(cov[i, i]), min_variance), ())
            )
            continue
        pa = [index[p] for p in parents]
        s_pp = cov[np.ix_(pa, pa)] + 1e-10 * np.eye(len(pa))
        s_px = cov[pa, i]
        w = np.linalg.solve(s_pp, s_px)
        b0 = float(mean[i] - w @ mean[pa])
        var = float(cov[i, i] - w @ s_px)
        cpds.append(LinearGaussianCPD(node, b0, w, max(var, min_variance), parents))
    return GaussianBayesianNetwork(dag, cpds)


def em_gaussian(
    dag: DAG,
    data: Dataset,
    max_iter: int = 50,
    tol: float = 1e-6,
    min_variance: float = 1e-9,
) -> tuple[GaussianBayesianNetwork, list[float]]:
    """Fit a Gaussian network from incomplete data (NaN = missing).

    Returns the fitted network and the per-iteration observed-data
    log-likelihood trace (monotone non-decreasing up to numerics —
    asserted by the property tests).
    """
    names = [str(v) for v in data.columns]
    array = data.to_array(names)
    if not np.isnan(array).any():
        return fit_gaussian_network(dag, data, min_variance=min_variance), []
    if np.isnan(array).all(axis=0).any():
        raise LearningError("a column is entirely missing; EM cannot identify it")

    # Initialize by mean-imputation MLE.
    filled = array.copy()
    col_means = np.nanmean(array, axis=0)
    bad = np.isnan(filled)
    filled[bad] = np.take(col_means, np.nonzero(bad)[1])
    network = fit_gaussian_network(dag, Dataset.from_array(filled, names),
                                   min_variance=min_variance)

    trace: list[float] = []
    for _ in range(max_iter):
        m1, m2, n = _expected_moments(network, array, names)
        network = _refit_from_moments(dag, names, m1, m2, n, min_variance=min_variance)
        ll = _observed_log_likelihood(network, array, names)
        if trace and abs(ll - trace[-1]) < tol * max(1.0, abs(trace[-1])):
            trace.append(ll)
            break
        trace.append(ll)
    return network, trace


def _observed_log_likelihood(
    network: GaussianBayesianNetwork, array: np.ndarray, names: list[str]
) -> float:
    """Marginal log-likelihood of the observed entries only."""
    order, mean, cov = joint_gaussian(network)
    perm = [names.index(v) for v in order]
    data = array[:, perm]
    miss = np.isnan(data)
    total = 0.0
    patterns: dict[tuple, list[int]] = {}
    for row, pattern in enumerate(map(tuple, miss)):
        patterns.setdefault(pattern, []).append(row)
    for pattern, rows in patterns.items():
        observed = np.flatnonzero(~np.asarray(pattern))
        if observed.size == 0:
            continue
        sub_mean = mean[observed]
        sub_cov = cov[np.ix_(observed, observed)] + 1e-12 * np.eye(observed.size)
        vals = data[np.ix_(np.asarray(rows), observed)]
        resid = vals - sub_mean
        sign, logdet = np.linalg.slogdet(sub_cov)
        if sign <= 0:
            raise LearningError("covariance became non-PD during EM")
        solve = np.linalg.solve(sub_cov, resid.T)
        quad = np.einsum("ij,ji->i", resid, solve)
        total += float(
            -0.5 * (observed.size * math.log(2 * math.pi) + logdet) * len(rows)
            - 0.5 * quad.sum()
        )
    return total
