"""Greedy hill-climbing structure search over edge operations.

K2 (the paper's choice) needs a node ordering; hill climbing does not —
it walks the full DAG space with add/delete/reverse moves, at higher
cost.  Having both lets the benchmarks show that the knowledge-derived
KERT-BN structure beats *any* practical search under tight construction
budgets, not just ordering-based K2.

The search is score-decomposable: each move only re-scores the affected
families, and a :class:`~repro.bn.learning.scores.ScoreCache` makes
repeated family evaluations free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.bn.dag import DAG
from repro.exceptions import GraphError, LearningError

LocalScore = Callable[[str, tuple[str, ...]], float]


@dataclass
class HillClimbResult:
    dag: DAG
    score: float
    n_iterations: int
    n_score_evaluations: int
    elapsed_seconds: float


def _family_score(dag: DAG, node: str, local_score: LocalScore) -> float:
    return local_score(node, tuple(map(str, dag.parents(node))))


def hill_climb(
    nodes: Sequence[str],
    local_score: LocalScore,
    max_parents: "int | None" = None,
    max_iterations: int = 10_000,
    start: "DAG | None" = None,
) -> HillClimbResult:
    """Greedy best-move hill climbing from the empty (or given) DAG.

    Moves: add edge, delete edge, reverse edge; the best strictly
    improving move is applied each iteration until none exists.
    """
    names = [str(n) for n in nodes]
    if len(set(names)) != len(names):
        raise LearningError("duplicate node names")
    dag = start.copy() if start is not None else DAG(nodes=names)
    if start is not None and set(map(str, start.nodes)) != set(names):
        raise LearningError("start DAG nodes do not match")
    started = time.perf_counter()
    n_evals = 0

    def score_of(node: str, parents: tuple[str, ...]) -> float:
        nonlocal n_evals
        n_evals += 1
        return local_score(node, parents)

    family = {n: score_of(n, tuple(map(str, dag.parents(n)))) for n in names}
    total = sum(family.values())
    iterations = 0
    while iterations < max_iterations:
        iterations += 1
        best_move = None
        best_gain = 1e-12
        for u in names:
            for v in names:
                if u == v:
                    continue
                if dag.has_edge(u, v):
                    # Delete u -> v.
                    new_parents = tuple(
                        p for p in map(str, dag.parents(v)) if p != u
                    )
                    gain = score_of(v, new_parents) - family[v]
                    if gain > best_gain:
                        best_move, best_gain = ("del", u, v), gain
                    # Reverse u -> v  (delete + add v -> u).
                    if max_parents is None or dag.in_degree(u) < max_parents:
                        if not _would_cycle_on_reverse(dag, u, v):
                            gain_v = score_of(v, new_parents) - family[v]
                            new_u_parents = tuple(map(str, dag.parents(u))) + (v,)
                            gain_u = score_of(u, new_u_parents) - family[u]
                            gain = gain_v + gain_u
                            if gain > best_gain:
                                best_move, best_gain = ("rev", u, v), gain
                elif not dag.has_path(v, u):  # add u -> v keeps acyclicity
                    if max_parents is not None and dag.in_degree(v) >= max_parents:
                        continue
                    new_parents = tuple(map(str, dag.parents(v))) + (u,)
                    gain = score_of(v, new_parents) - family[v]
                    if gain > best_gain:
                        best_move, best_gain = ("add", u, v), gain
        if best_move is None:
            break
        op, u, v = best_move
        if op == "add":
            dag.add_edge(u, v)
            family[v] = local_score(v, tuple(map(str, dag.parents(v))))
        elif op == "del":
            dag.remove_edge(u, v)
            family[v] = local_score(v, tuple(map(str, dag.parents(v))))
        else:
            dag.remove_edge(u, v)
            dag.add_edge(v, u)
            family[v] = local_score(v, tuple(map(str, dag.parents(v))))
            family[u] = local_score(u, tuple(map(str, dag.parents(u))))
        total = sum(family.values())
    return HillClimbResult(
        dag=dag,
        score=total,
        n_iterations=iterations,
        n_score_evaluations=n_evals,
        elapsed_seconds=time.perf_counter() - started,
    )


def _would_cycle_on_reverse(dag: DAG, u: str, v: str) -> bool:
    """Reversing u->v creates a cycle iff another u~>v path exists."""
    probe = dag.copy()
    probe.remove_edge(u, v)
    try:
        probe.add_edge(v, u)
    except GraphError:
        return True
    return False
