"""The K2 structure-learning algorithm (Cooper & Herskovits 1992).

K2 is the paper's NRT-BN structure learner: given a node ordering, each
node greedily acquires the predecessor parent that most improves a
decomposable score, stopping at no-improvement or a parent-count cap.
The O((n+1)²) candidate-evaluation growth the paper points to in Section
3.2 is what makes NRT-BN construction time super-linear in Figure 4.

Section 5.3 additionally runs "K2 with different random orderings …
until the next model construction is due"; :func:`k2_random_restarts`
implements exactly that budgeted restart scheme.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.bn.dag import DAG
from repro.bn.learning.scores import ScoreCache
from repro.exceptions import LearningError
from repro.utils.rng import ensure_rng

LocalScore = Callable[[str, tuple[str, ...]], float]


@dataclass
class K2Result:
    """Outcome of a K2 run."""

    dag: DAG
    score: float
    order: tuple[str, ...]
    n_score_evaluations: int = 0
    n_restarts: int = 1
    elapsed_seconds: float = 0.0
    per_node_scores: dict = field(default_factory=dict)
    n_cache_hits: int = 0


def _as_cached(local_score: LocalScore) -> ScoreCache:
    """Memoize ``local_score`` unless the caller already did."""
    if isinstance(local_score, ScoreCache):
        return local_score
    return ScoreCache(local_score)


def k2_search(
    nodes: Sequence[str],
    local_score: LocalScore,
    order: "Sequence[str] | None" = None,
    max_parents: "int | None" = None,
) -> K2Result:
    """Run K2 over ``nodes`` with local score ``local_score``.

    Parameters
    ----------
    nodes:
        All variables; also the default ordering.
    local_score:
        ``f(variable, parent_tuple) -> float`` (log score, larger better).
    order:
        Node ordering (parents must precede children). Defaults to
        ``nodes`` order.
    max_parents:
        Optional cap on parents per node (``u`` in the original paper).
    """
    nodes = [str(n) for n in nodes]
    order = [str(n) for n in (order if order is not None else nodes)]
    if sorted(order) != sorted(nodes):
        raise LearningError("order must be a permutation of nodes")
    # Memoize family scores: one ordering never repeats a (node, parents)
    # pair, but random-restart callers pass a shared ScoreCache so
    # overlapping families across orderings are scored once.
    scorer = _as_cached(local_score)
    hits_before = scorer.n_hits
    start = time.perf_counter()
    dag = DAG(nodes=order)
    total = 0.0
    n_evals = 0
    per_node: dict[str, float] = {}
    for i, node in enumerate(order):
        predecessors = order[:i]
        parents: list[str] = []
        best = scorer(node, ())
        n_evals += 1
        improved = True
        while improved and (max_parents is None or len(parents) < max_parents):
            improved = False
            best_candidate = None
            best_candidate_score = best
            for cand in predecessors:
                if cand in parents:
                    continue
                s = scorer(node, tuple(parents + [cand]))
                n_evals += 1
                if s > best_candidate_score:
                    best_candidate, best_candidate_score = cand, s
            if best_candidate is not None:
                parents.append(best_candidate)
                best = best_candidate_score
                improved = True
        for p in parents:
            dag.add_edge(p, node)
        per_node[node] = best
        total += best
    return K2Result(
        dag=dag,
        score=total,
        order=tuple(order),
        n_score_evaluations=n_evals,
        elapsed_seconds=time.perf_counter() - start,
        per_node_scores=per_node,
        n_cache_hits=scorer.n_hits - hits_before,
    )


def k2_random_restarts(
    nodes: Sequence[str],
    local_score: LocalScore,
    rng=None,
    n_restarts: "int | None" = None,
    time_budget: "float | None" = None,
    max_parents: "int | None" = None,
) -> K2Result:
    """Best K2 result over random orderings.

    Runs until ``n_restarts`` orderings have been tried or
    ``time_budget`` seconds elapse (whichever is given; at least one
    ordering always runs).  This mirrors Section 5.3's "repeatedly run K2
    with different random orderings until the next model construction is
    due".
    """
    if n_restarts is None and time_budget is None:
        raise LearningError("need n_restarts or time_budget")
    rng = ensure_rng(rng)
    nodes = [str(n) for n in nodes]
    # One cache shared across every restart: different orderings revisit
    # many of the same (node, parent-set) families, so later restarts run
    # mostly on cache hits — more orderings fit in the same time budget.
    scorer = _as_cached(local_score)
    hits_before = scorer.n_hits
    start = time.perf_counter()
    best: "K2Result | None" = None
    restarts = 0
    total_evals = 0
    while True:
        order = [nodes[i] for i in rng.permutation(len(nodes))]
        result = k2_search(nodes, scorer, order=order, max_parents=max_parents)
        restarts += 1
        total_evals += result.n_score_evaluations
        if best is None or result.score > best.score:
            best = result
        if n_restarts is not None and restarts >= n_restarts:
            break
        if time_budget is not None and time.perf_counter() - start >= time_budget:
            break
    best.n_restarts = restarts
    best.n_score_evaluations = total_evals
    best.n_cache_hits = scorer.n_hits - hits_before
    best.elapsed_seconds = time.perf_counter() - start
    return best
