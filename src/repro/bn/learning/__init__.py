"""Parameter and structure learning.

Parameter learning is *decomposable*: each CPD ``P(X_i | Φ(X_i))`` needs
only the columns ``{X_i} ∪ Φ(X_i)`` — the data-locality property that
Section 3.4 exploits to push learning onto per-service monitoring agents.
The per-node functions here (:func:`fit_linear_gaussian`,
:func:`fit_tabular`) are therefore the exact unit of work a decentralized
agent performs.

Structure learning provides the NRT-BN baseline: the K2 greedy algorithm
(Cooper & Herskovits 1992) over decomposable scores, exhaustive search
for tiny networks, and random-restart orderings as used in Section 5.3.
"""

from repro.bn.learning.mle import (
    fit_linear_gaussian,
    fit_tabular,
    fit_gaussian_network,
    fit_discrete_network,
)
from repro.bn.learning.bayes import (
    fit_linear_gaussian_bayes,
    fit_gaussian_network_bayes,
)
from repro.bn.learning.scores import (
    gaussian_bic_local,
    discrete_k2_local,
    discrete_bic_local,
    ScoreCache,
)
from repro.bn.learning.k2 import k2_search, k2_random_restarts, K2Result
from repro.bn.learning.hill_climbing import hill_climb, HillClimbResult
from repro.bn.learning.exhaustive import exhaustive_search
from repro.bn.learning.em import em_gaussian

__all__ = [
    "fit_linear_gaussian",
    "fit_tabular",
    "fit_gaussian_network",
    "fit_discrete_network",
    "fit_linear_gaussian_bayes",
    "fit_gaussian_network_bayes",
    "gaussian_bic_local",
    "discrete_k2_local",
    "discrete_bic_local",
    "ScoreCache",
    "k2_search",
    "k2_random_restarts",
    "K2Result",
    "hill_climb",
    "HillClimbResult",
    "exhaustive_search",
    "em_gaussian",
]
