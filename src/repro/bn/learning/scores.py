"""Decomposable structure-learning scores.

K2 (and any order-based search) needs a *local* score
``score(X_i, parent_set)`` that the whole-graph score decomposes over.
Three are provided:

- :func:`gaussian_bic_local` — Gaussian BIC, used when NRT-BN learns a
  structure from the paper's continuous simulation data;
- :func:`discrete_k2_local` — the Cooper–Herskovits K2 metric (uniform
  Dirichlet prior), the score of the original K2 paper the authors cite;
- :func:`discrete_bic_local` — discrete BIC, a cheaper alternative.

All return *log* scores; larger is better.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable

import numpy as np
from scipy.special import gammaln

from repro.bn.data import Dataset
from repro.exceptions import LearningError

LocalScore = Callable[[str, tuple[str, ...]], float]

_LOG_2PI = math.log(2.0 * math.pi)


def gaussian_bic_local(
    data: Dataset,
    variable: str,
    parents: tuple[str, ...],
    ridge: float = 1e-10,
    min_variance: float = 1e-12,
) -> float:
    """Gaussian BIC of regressing ``variable`` on ``parents``.

    ``max-loglik - (k/2)·ln N`` with ``k = |parents| + 2`` (intercept,
    coefficients, variance).
    """
    y = np.asarray(data[variable], dtype=float)
    n = y.size
    if n < 2:
        raise LearningError("need at least 2 rows for a Gaussian score")
    if parents:
        X = np.column_stack(
            [np.ones(n)] + [np.asarray(data[p], dtype=float) for p in parents]
        )
        gram = X.T @ X + ridge * np.eye(X.shape[1])
        beta = np.linalg.solve(gram, X.T @ y)
        resid = y - X @ beta
    else:
        resid = y - y.mean()
    var = max(float(np.mean(resid * resid)), min_variance)
    loglik = -0.5 * n * (_LOG_2PI + math.log(var) + 1.0)
    k = len(parents) + 2
    return loglik - 0.5 * k * math.log(n)


def _counts(
    data: Dataset,
    variable: str,
    cardinality: int,
    parents: tuple[str, ...],
    parent_cards: tuple[int, ...],
) -> np.ndarray:
    """(cardinality, n_parent_configs) count matrix, vectorized."""
    child = np.asarray(data[variable], dtype=int)
    n_configs = int(np.prod(parent_cards)) if parents else 1
    counts = np.zeros((cardinality, n_configs))
    if parents:
        config = np.zeros(child.size, dtype=np.int64)
        for p, c in zip(parents, parent_cards):
            config = config * c + np.asarray(data[p], dtype=int)
        np.add.at(counts, (child, config), 1.0)
    else:
        np.add.at(counts, (child, np.zeros(child.size, dtype=int)), 1.0)
    return counts


def discrete_k2_local(
    data: Dataset,
    variable: str,
    cardinality: int,
    parents: tuple[str, ...],
    parent_cards: tuple[int, ...],
) -> float:
    """Cooper–Herskovits K2 metric (log), uniform Dirichlet prior α=1.

    ``Σ_j [ lnΓ(r) − lnΓ(r + N_j) + Σ_k lnΓ(1 + N_jk) ]`` for child
    cardinality ``r``, parent configurations ``j`` and child states ``k``.
    """
    counts = _counts(data, variable, cardinality, parents, parent_cards)
    r = cardinality
    n_j = counts.sum(axis=0)
    score = float(
        np.sum(gammaln(r) - gammaln(r + n_j)) + np.sum(gammaln(counts + 1.0))
    )
    return score


def discrete_bdeu_local(
    data: Dataset,
    variable: str,
    cardinality: int,
    parents: tuple[str, ...],
    parent_cards: tuple[int, ...],
    ess: float = 10.0,
) -> float:
    """BDeu score (log): Dirichlet prior with equivalent sample size.

    Unlike the K2 metric's fixed α=1 per cell, BDeu spreads a total
    pseudo-count ``ess`` uniformly over the (parent-config × state)
    cells: ``α_ijk = ess / (q_i · r_i)``.  This makes the score
    *likelihood equivalent* — Markov-equivalent DAGs score identically —
    which the property tests verify and the K2 metric lacks.
    """
    if not ess > 0:
        raise LearningError(f"ess must be > 0, got {ess}")
    counts = _counts(data, variable, cardinality, parents, parent_cards)
    r = cardinality
    q = counts.shape[1]
    a_ijk = ess / (q * r)
    a_ij = ess / q
    n_j = counts.sum(axis=0)
    return float(
        np.sum(gammaln(a_ij) - gammaln(a_ij + n_j))
        + np.sum(gammaln(counts + a_ijk) - gammaln(a_ijk))
    )


def discrete_bic_local(
    data: Dataset,
    variable: str,
    cardinality: int,
    parents: tuple[str, ...],
    parent_cards: tuple[int, ...],
) -> float:
    """Discrete BIC: multinomial max-loglik minus complexity penalty."""
    counts = _counts(data, variable, cardinality, parents, parent_cards)
    n = counts.sum()
    if n < 1:
        raise LearningError("need at least 1 row for a discrete score")
    totals = counts.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        probs = np.where(totals > 0, counts / np.where(totals > 0, totals, 1.0), 0.0)
        log_terms = np.where(counts > 0, counts * np.log(probs), 0.0)
    loglik = float(log_terms.sum())
    n_configs = counts.shape[1]
    k = (cardinality - 1) * n_configs
    return loglik - 0.5 * k * math.log(n)


class ScoreCache:
    """Memoized local-score evaluator.

    K2 re-evaluates many overlapping ``(variable, parent-set)`` pairs when
    run with random-restart orderings (Section 5.3); caching makes the
    restarts nearly free on repeats.  The cache also counts evaluations,
    which the Fig. 4 benchmark reports as NRT-BN's structure-search cost.
    """

    def __init__(self, local_score: Callable[..., float]):
        self._score = local_score
        self._cache: dict[tuple[str, frozenset], float] = {}
        self.n_evaluations = 0
        self.n_hits = 0

    def __call__(self, variable: str, parents: Iterable[str], *args) -> float:
        key = (variable, frozenset(parents))
        if key in self._cache:
            self.n_hits += 1
            return self._cache[key]
        self.n_evaluations += 1
        value = self._score(variable, tuple(parents), *args)
        self._cache[key] = value
        return value

    def clear(self) -> None:
        self._cache.clear()
        self.n_evaluations = 0
        self.n_hits = 0
