"""Exhaustive structure search for small networks.

Section 3.2 notes that "it is intractable to exhaustively search for the
best DAG in large environments" — this module makes that concrete.  It
finds the *global* optimum of a decomposable score by enumerating node
orderings (every DAG is consistent with at least one topological order)
and, per ordering, the best predecessor parent subset per node.  Cost is
``n! · n · 2^(n-1)`` local scores, so a guard refuses ``n > 7``.

Besides grounding the tractability claim, the exhaustive optimum gives
tests a reference that K2 should match on tiny, well-separated problems.
"""

from __future__ import annotations

from itertools import combinations, permutations
from typing import Callable, Sequence

from repro.bn.dag import DAG
from repro.exceptions import LearningError

LocalScore = Callable[[str, tuple[str, ...]], float]


def _best_parent_subset(
    node: str,
    predecessors: tuple[str, ...],
    local_score: LocalScore,
    max_parents: "int | None",
) -> tuple[tuple[str, ...], float]:
    best_set: tuple[str, ...] = ()
    best = local_score(node, ())
    cap = len(predecessors) if max_parents is None else min(max_parents, len(predecessors))
    for k in range(1, cap + 1):
        for subset in combinations(predecessors, k):
            s = local_score(node, subset)
            if s > best:
                best, best_set = s, subset
    return best_set, best


def exhaustive_search(
    nodes: Sequence[str],
    local_score: LocalScore,
    max_parents: "int | None" = None,
    max_nodes: int = 7,
) -> tuple[DAG, float]:
    """Globally optimal DAG under a decomposable score.

    Raises :class:`LearningError` when ``len(nodes) > max_nodes`` — the
    factorial blow-up the paper's Section 3.2 warns about.
    """
    nodes = [str(n) for n in nodes]
    if len(nodes) > max_nodes:
        raise LearningError(
            f"exhaustive search over {len(nodes)} nodes would evaluate "
            f"on the order of {len(nodes)}!·2^{len(nodes)-1} scores; "
            f"refusing (max_nodes={max_nodes})"
        )
    if not nodes:
        raise LearningError("need at least one node")
    best_dag: "DAG | None" = None
    best_score = -float("inf")
    for order in permutations(nodes):
        total = 0.0
        parent_sets: dict[str, tuple[str, ...]] = {}
        for i, node in enumerate(order):
            pset, s = _best_parent_subset(node, order[:i], local_score, max_parents)
            parent_sets[node] = pset
            total += s
        if total > best_score:
            best_score = total
            best_dag = DAG(
                nodes=nodes,
                edges=[(p, c) for c, ps in parent_sets.items() for p in ps],
            )
    assert best_dag is not None
    return best_dag, best_score
