"""From-scratch Bayesian-network engine.

This subpackage is the statistical substrate of the reproduction: the
paper built on Murphy's Matlab Bayes Net Toolbox, which is unavailable
here, so everything — graphs, CPDs, inference, learning — is implemented
directly on NumPy.

Layout
------
- :mod:`repro.bn.dag` — directed acyclic graphs with BN-specific queries
  (topological order, d-separation, moralization).
- :mod:`repro.bn.data` — the column-oriented :class:`Dataset` that all
  learning and scoring code consumes.
- :mod:`repro.bn.factors` — discrete factor algebra for exact inference.
- :mod:`repro.bn.cpd` — tabular, linear-Gaussian and (noisy-)deterministic
  conditional probability distributions.
- :mod:`repro.bn.network` — discrete / Gaussian / hybrid networks.
- :mod:`repro.bn.inference` — variable elimination, exact Gaussian
  conditioning, sampling, likelihood scoring.
- :mod:`repro.bn.learning` — MLE and Bayesian parameter estimation, the
  K2 structure-learning algorithm and decomposable scores, exhaustive
  search, and EM for incomplete data.
- :mod:`repro.bn.discretize` — quantile / uniform discretization used by
  the discrete Section-5 models.
"""

from repro.bn.dag import DAG
from repro.bn.data import Dataset
from repro.bn.factors import DiscreteFactor
from repro.bn.cpd import TabularCPD, LinearGaussianCPD, DeterministicCPD, NoisyDeterministicCPD
from repro.bn.network import (
    DiscreteBayesianNetwork,
    GaussianBayesianNetwork,
    HybridResponseNetwork,
)

__all__ = [
    "DAG",
    "Dataset",
    "DiscreteFactor",
    "TabularCPD",
    "LinearGaussianCPD",
    "DeterministicCPD",
    "NoisyDeterministicCPD",
    "DiscreteBayesianNetwork",
    "GaussianBayesianNetwork",
    "HybridResponseNetwork",
]
