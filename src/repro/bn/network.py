"""Bayesian-network containers: discrete, Gaussian, and hybrid.

A network is a :class:`~repro.bn.dag.DAG` plus one CPD per node whose
parent set matches the DAG.  The base class provides everything that only
needs the CPD interface — joint likelihood (the paper's accuracy metric),
forward sampling, parameter counting — while the subclasses add the
inference entry points appropriate to their CPD family.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

import numpy as np

from repro.bn.cpd.base import CPD
from repro.bn.cpd.deterministic import DeterministicCPD, NoisyDeterministicCPD
from repro.bn.cpd.linear_gaussian import LinearGaussianCPD
from repro.bn.cpd.tabular import TabularCPD
from repro.bn.dag import DAG
from repro.bn.data import Dataset
from repro.exceptions import CPDError, InferenceError
from repro.utils.rng import ensure_rng

_LOG10 = math.log(10.0)


class BayesianNetwork:
    """A DAG with a CPD attached to every node."""

    def __init__(self, dag: DAG, cpds: Iterable[CPD]):
        self.dag = dag.copy()
        self._cpds: dict[str, CPD] = {}
        for cpd in cpds:
            if cpd.variable in self._cpds:
                raise CPDError(f"duplicate CPD for {cpd.variable!r}")
            self._cpds[cpd.variable] = cpd
        missing = set(self.dag.nodes) - set(self._cpds)
        if missing:
            raise CPDError(f"nodes without CPDs: {sorted(map(str, missing))}")
        extra = set(self._cpds) - set(self.dag.nodes)
        if extra:
            raise CPDError(f"CPDs for unknown nodes: {sorted(extra)}")
        for node in self.dag.nodes:
            cpd = self._cpds[node]
            if set(cpd.parents) != set(self.dag.parents(node)):
                raise CPDError(
                    f"CPD parents {cpd.parents} for {node!r} do not match "
                    f"DAG parents {self.dag.parents(node)}"
                )

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(str(n) for n in self.dag.nodes)

    def cpd(self, node: str) -> CPD:
        try:
            return self._cpds[node]
        except KeyError:
            raise CPDError(f"no CPD for node {node!r}") from None

    @property
    def cpds(self) -> tuple[CPD, ...]:
        return tuple(self._cpds[n] for n in self.dag.nodes)

    @property
    def n_parameters(self) -> int:
        """Total free parameters — the BIC complexity term."""
        return sum(c.n_parameters for c in self._cpds.values())

    # ------------------------------------------------------------------ #
    # Likelihood (the paper's data-fitting accuracy metric, Sec. 4.1)
    # ------------------------------------------------------------------ #

    def per_row_log_likelihood(self, data: Dataset) -> np.ndarray:
        """Natural-log joint density/mass of each row."""
        total = np.zeros(data.n_rows)
        for node in self.dag.nodes:
            total += self._cpds[node].log_likelihood(data)
        return total

    def log_likelihood(self, data: Dataset) -> float:
        """``ln p(data | BN)`` summed over rows."""
        return float(self.per_row_log_likelihood(data).sum())

    def log10_likelihood(self, data: Dataset) -> float:
        """``log10 p(data | BN)`` — exactly the paper's reported metric."""
        return self.log_likelihood(data) / _LOG10

    # ------------------------------------------------------------------ #
    # Forward sampling
    # ------------------------------------------------------------------ #

    def sample(self, n: int, rng=None) -> Dataset:
        """Draw ``n`` joint samples by ancestral (topological) sampling."""
        rng = ensure_rng(rng)
        if n <= 0:
            raise InferenceError(f"sample size must be positive, got {n}")
        drawn: dict[str, np.ndarray] = {}
        for node in self.dag.topological_order():
            cpd = self._cpds[node]
            parent_values = {p: drawn[p] for p in cpd.parents}
            drawn[str(node)] = cpd.sample(parent_values, n, rng)
        # Return columns in the DAG's node order for stable downstream use.
        return Dataset({str(node): drawn[str(node)] for node in self.dag.nodes})

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n_nodes={self.dag.n_nodes}, "
            f"n_edges={self.dag.n_edges}, n_parameters={self.n_parameters})"
        )


class DiscreteBayesianNetwork(BayesianNetwork):
    """All-discrete network (TabularCPD / DeterministicCPD nodes)."""

    def __init__(self, dag: DAG, cpds: Iterable[CPD]):
        super().__init__(dag, cpds)
        for cpd in self._cpds.values():
            if not isinstance(cpd, (TabularCPD, DeterministicCPD)):
                raise CPDError(
                    f"{type(cpd).__name__} for {cpd.variable!r} is not discrete"
                )
        self._check_cardinalities()
        self._compiled = None

    def _check_cardinalities(self) -> None:
        cards = self.cardinalities
        for cpd in self._cpds.values():
            parent_cards = cpd.parent_cardinalities
            for p, c in zip(cpd.parents, parent_cards):
                if cards[p] != c:
                    raise CPDError(
                        f"CPD for {cpd.variable!r} expects parent {p!r} with "
                        f"cardinality {c}, but {p!r} has cardinality {cards[p]}"
                    )

    @property
    def cardinalities(self) -> dict[str, int]:
        return {c.variable: c.cardinality for c in self._cpds.values()}

    def compiled(self):
        """The cached compile-once inference engine for this network.

        Factors are extracted and per-signature query plans memoized on
        first use; see
        :class:`repro.bn.inference.engine.CompiledDiscreteModel`.  The
        engine assumes the network is immutable (every builder in this
        codebase constructs fresh CPD objects, so this holds).
        """
        if self._compiled is None:
            from repro.bn.inference.engine import CompiledDiscreteModel

            self._compiled = CompiledDiscreteModel(self)
        return self._compiled

    def query(self, variables: Iterable[str], evidence: "Mapping[str, int] | None" = None):
        """Posterior marginal factor over ``variables`` given ``evidence``.

        Fast path: answered by the cached compiled engine, which matches
        scratch variable elimination
        (:func:`repro.bn.inference.variable_elimination.query`) exactly —
        the cross-check tests assert agreement to 1e-9.
        """
        return self.compiled().query(variables, evidence or {})

    def query_batch(self, variables: Iterable[str], evidence_rows, dtype=None):
        """Vectorized posterior over ``variables`` for N evidence rows.

        See :meth:`repro.bn.inference.engine.CompiledDiscreteModel.query_batch`;
        returns an ``(N, ...)`` array of normalized posteriors.
        ``dtype=np.float32`` selects the single-precision gather path
        (≤5e-6 absolute deviation).
        """
        return self.compiled().query_batch(variables, evidence_rows, dtype=dtype)

    def posterior_mean(
        self,
        variable: str,
        centers: np.ndarray,
        evidence: "Mapping[str, int] | None" = None,
    ) -> float:
        """Mean of a discretized variable's posterior, in original units."""
        factor = self.query([variable], evidence).normalize()
        centers = np.asarray(centers, dtype=float)
        if centers.shape != factor.values.shape:
            raise InferenceError("centers do not match the variable's cardinality")
        return float(np.dot(factor.values, centers))


class GaussianBayesianNetwork(BayesianNetwork):
    """All-linear-Gaussian network; the joint is multivariate normal."""

    def __init__(self, dag: DAG, cpds: Iterable[CPD]):
        super().__init__(dag, cpds)
        for cpd in self._cpds.values():
            if not isinstance(cpd, LinearGaussianCPD):
                raise CPDError(
                    f"{type(cpd).__name__} for {cpd.variable!r} is not linear-Gaussian"
                )

    def to_joint_gaussian(self):
        """Return ``(names, mean, cov)`` of the equivalent joint MVN."""
        from repro.bn.inference.gaussian import joint_gaussian

        return joint_gaussian(self)

    def condition(self, evidence: Mapping[str, float]):
        """Exact posterior ``(names, mean, cov)`` over non-evidence nodes."""
        from repro.bn.inference.gaussian import condition_gaussian

        names, mean, cov = self.to_joint_gaussian()
        return condition_gaussian(names, mean, cov, evidence)

    def marginal(self, variables: Iterable[str]):
        """Exact marginal ``(names, mean, cov)`` over ``variables``."""
        from repro.bn.inference.gaussian import marginal_gaussian

        names, mean, cov = self.to_joint_gaussian()
        return marginal_gaussian(names, mean, cov, variables)


class HybridResponseNetwork(BayesianNetwork):
    """Gaussian service nodes plus a (noisy-)deterministic response node.

    This is the continuous KERT-BN of Section 4: elapsed-time nodes carry
    linear-Gaussian CPDs learned from data, while the response node ``D``
    carries the workflow-given CPD of Eq. 4 (here ``f(X) + N(0, σ²)``).
    """

    def __init__(self, dag: DAG, cpds: Iterable[CPD], response: str):
        super().__init__(dag, cpds)
        self.response = str(response)
        rcpd = self.cpd(self.response)
        if not isinstance(rcpd, NoisyDeterministicCPD):
            raise CPDError(
                f"response node {response!r} must carry a NoisyDeterministicCPD"
            )
        for node in self.nodes:
            if node == self.response:
                continue
            if not isinstance(self.cpd(node), LinearGaussianCPD):
                raise CPDError(
                    f"non-response node {node!r} must carry a LinearGaussianCPD"
                )

    def service_subnetwork(self) -> GaussianBayesianNetwork:
        """The Gaussian network over the elapsed-time nodes only."""
        keep = [n for n in self.nodes if n != self.response]
        sub_dag = self.dag.subgraph(keep)
        return GaussianBayesianNetwork(sub_dag, [self.cpd(n) for n in keep])

    def response_distribution(
        self, n_samples: int = 20_000, rng=None, evidence: "Mapping[str, float] | None" = None
    ) -> np.ndarray:
        """Monte-Carlo samples of the response node, optionally given
        evidence on (a subset of) elapsed-time nodes.

        The deterministic ``max`` in ``f`` makes ``D`` non-Gaussian, so the
        posterior is represented by samples; downstream code summarizes
        them (tail probabilities for Eq. 5, histograms for Fig. 7).
        """
        rng = ensure_rng(rng)
        sub = self.service_subnetwork()
        if evidence:
            names, mean, cov = sub.condition(evidence)
            draws = _sample_mvn(mean, cov, n_samples, rng)
            values = {nm: draws[:, j] for j, nm in enumerate(names)}
            for nm, v in evidence.items():
                values[nm] = np.full(n_samples, float(v))
        else:
            data = sub.sample(n_samples, rng)
            values = {nm: data[nm] for nm in data.columns}
        rcpd = self.cpd(self.response)
        assert isinstance(rcpd, NoisyDeterministicCPD)
        noise = rng.normal(0.0, rcpd.std, size=n_samples)
        return rcpd.predict(values) + noise


def _sample_mvn(mean: np.ndarray, cov: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
    """Draw from N(mean, cov) robustly (eigenvalue clipping for PSD noise)."""
    if mean.size == 0:
        return np.empty((n, 0))
    # Symmetrize and clip tiny negative eigenvalues from float error.
    sym = 0.5 * (cov + cov.T)
    vals, vecs = np.linalg.eigh(sym)
    vals = np.clip(vals, 0.0, None)
    root = vecs * np.sqrt(vals)
    z = rng.standard_normal((n, mean.size))
    return mean + z @ root.T
