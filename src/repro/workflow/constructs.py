"""Workflow AST: the four constructs of Cardoso et al.

Every leaf is an :class:`Activity` naming one service; inner nodes are
:class:`Sequence`, :class:`Parallel`, :class:`Choice` and :class:`Loop`.
Service names must be unique across a workflow — each becomes exactly one
elapsed-time node ``X_i`` of the KERT-BN.
"""

from __future__ import annotations

import abc
from typing import Iterable, Iterator, Sequence as Seq

from repro.exceptions import WorkflowError


class WorkflowNode(abc.ABC):
    """Base class for workflow AST nodes."""

    @abc.abstractmethod
    def services(self) -> tuple[str, ...]:
        """All service names in this subtree, in document order."""

    @abc.abstractmethod
    def children(self) -> tuple["WorkflowNode", ...]:
        """Direct sub-workflows (empty for activities)."""

    def walk(self) -> Iterator["WorkflowNode"]:
        """Depth-first pre-order traversal."""
        yield self
        for child in self.children():
            yield from child.walk()

    def depth(self) -> int:
        """Nesting depth (an Activity has depth 1)."""
        kids = self.children()
        return 1 + (max(k.depth() for k in kids) if kids else 0)

    def n_services(self) -> int:
        return len(self.services())

    def validate(self) -> None:
        """Check structural invariants; raises :class:`WorkflowError`.

        - every service name occurs exactly once;
        - composite nodes have the arity their semantics require.
        """
        seen: set[str] = set()
        for node in self.walk():
            if isinstance(node, Activity):
                if node.name in seen:
                    raise WorkflowError(
                        f"service {node.name!r} appears more than once"
                    )
                seen.add(node.name)

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        return self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash(self._key())

    @abc.abstractmethod
    def _key(self) -> tuple:
        """Structural identity key for equality/hashing."""


class Activity(WorkflowNode):
    """A single service invocation."""

    def __init__(self, name: str):
        name = str(name)
        if not name:
            raise WorkflowError("service name must be non-empty")
        self.name = name

    def services(self) -> tuple[str, ...]:
        return (self.name,)

    def children(self) -> tuple[WorkflowNode, ...]:
        return ()

    def _key(self) -> tuple:
        return ("activity", self.name)

    def __repr__(self) -> str:
        return f"Activity({self.name!r})"


class Sequence(WorkflowNode):
    """Sub-workflows executed one after another."""

    def __init__(self, steps: Iterable[WorkflowNode]):
        self.steps: tuple[WorkflowNode, ...] = tuple(steps)
        if len(self.steps) < 1:
            raise WorkflowError("Sequence needs at least one step")
        for s in self.steps:
            _check_node(s, "Sequence step")

    def services(self) -> tuple[str, ...]:
        return tuple(s for step in self.steps for s in step.services())

    def children(self) -> tuple[WorkflowNode, ...]:
        return self.steps

    def _key(self) -> tuple:
        return ("sequence", tuple(s._key() for s in self.steps))

    def __repr__(self) -> str:
        return f"Sequence({list(self.steps)!r})"


class Parallel(WorkflowNode):
    """Sub-workflows invoked simultaneously; joins when all complete.

    This is the construct whose reduction yields the ``max`` in the
    eDiaMoND function ``D = X1 + X2 + max(X3 + X5, X4 + X6)``.
    """

    def __init__(self, branches: Iterable[WorkflowNode]):
        self.branches: tuple[WorkflowNode, ...] = tuple(branches)
        if len(self.branches) < 2:
            raise WorkflowError("Parallel needs at least two branches")
        for b in self.branches:
            _check_node(b, "Parallel branch")

    def services(self) -> tuple[str, ...]:
        return tuple(s for b in self.branches for s in b.services())

    def children(self) -> tuple[WorkflowNode, ...]:
        return self.branches

    def _key(self) -> tuple:
        return ("parallel", tuple(b._key() for b in self.branches))

    def __repr__(self) -> str:
        return f"Parallel({list(self.branches)!r})"


class Choice(WorkflowNode):
    """Exactly one branch executes, branch ``i`` with probability ``p_i``."""

    def __init__(self, branches: Iterable[WorkflowNode], probabilities: Seq[float]):
        self.branches = tuple(branches)
        self.probabilities = tuple(float(p) for p in probabilities)
        if len(self.branches) < 2:
            raise WorkflowError("Choice needs at least two branches")
        if len(self.probabilities) != len(self.branches):
            raise WorkflowError("one probability per Choice branch required")
        if (
            any(p < 0 for p in self.probabilities)
            or abs(sum(self.probabilities) - 1.0) > 1e-9
        ):
            raise WorkflowError(
                f"Choice probabilities must be nonnegative and sum to 1, "
                f"got {self.probabilities}"
            )
        for b in self.branches:
            _check_node(b, "Choice branch")

    def services(self) -> tuple[str, ...]:
        return tuple(s for b in self.branches for s in b.services())

    def children(self) -> tuple[WorkflowNode, ...]:
        return self.branches

    def _key(self) -> tuple:
        return ("choice", tuple(b._key() for b in self.branches), self.probabilities)

    def __repr__(self) -> str:
        return f"Choice({list(self.branches)!r}, p={list(self.probabilities)!r})"


class Loop(WorkflowNode):
    """Body repeats; after each iteration it continues with ``continue_prob``.

    The expected iteration count is ``1 / (1 - continue_prob)`` (geometric,
    at least one execution), the reduction Cardoso et al. use for loops.
    """

    def __init__(self, body: WorkflowNode, continue_prob: float):
        _check_node(body, "Loop body")
        self.body = body
        self.continue_prob = float(continue_prob)
        if not 0.0 <= self.continue_prob < 1.0:
            raise WorkflowError(
                f"continue_prob must be in [0, 1), got {continue_prob}"
            )

    @property
    def expected_iterations(self) -> float:
        return 1.0 / (1.0 - self.continue_prob)

    def services(self) -> tuple[str, ...]:
        return self.body.services()

    def children(self) -> tuple[WorkflowNode, ...]:
        return (self.body,)

    def _key(self) -> tuple:
        return ("loop", self.body._key(), self.continue_prob)

    def __repr__(self) -> str:
        return f"Loop({self.body!r}, continue_prob={self.continue_prob})"


def _check_node(node: object, what: str) -> None:
    if not isinstance(node, WorkflowNode):
        raise WorkflowError(f"{what} must be a WorkflowNode, got {type(node)!r}")


def sequence_of(*names: str) -> Sequence:
    """Convenience: ``sequence_of("a", "b")`` = Sequence of Activities."""
    return Sequence([Activity(n) for n in names])
