"""ASCII rendering of workflows and Bayesian-network structures.

Operators reading `repro inspect-workflow` output (and test failures
involving structures) benefit from seeing the shape, not just edge
lists.  Pure-text rendering keeps the library dependency-free.
"""

from __future__ import annotations

from repro.bn.dag import DAG
from repro.workflow.constructs import (
    Activity,
    Choice,
    Loop,
    Parallel,
    Sequence,
    WorkflowNode,
)


def render_workflow(node: WorkflowNode, indent: str = "") -> str:
    """Tree rendering of a workflow AST.

    >>> from repro.workflow.constructs import sequence_of
    >>> print(render_workflow(sequence_of("a", "b")))
    sequence
    ├── a
    └── b
    """
    lines: list[str] = []

    def label(n: WorkflowNode) -> str:
        if isinstance(n, Activity):
            return n.name
        if isinstance(n, Sequence):
            return "sequence"
        if isinstance(n, Parallel):
            return "parallel"
        if isinstance(n, Choice):
            probs = ", ".join(f"{p:g}" for p in n.probabilities)
            return f"choice [{probs}]"
        if isinstance(n, Loop):
            return f"loop (continue={n.continue_prob:g})"
        return type(n).__name__  # pragma: no cover - future constructs

    def walk(n: WorkflowNode, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(label(n))
            child_prefix = ""
        else:
            connector = "└── " if is_last else "├── "
            lines.append(prefix + connector + label(n))
            child_prefix = prefix + ("    " if is_last else "│   ")
        kids = n.children()
        for i, child in enumerate(kids):
            walk(child, child_prefix, i == len(kids) - 1, False)

    walk(node, indent, True, True)
    return "\n".join(lines)


def render_dag(dag: DAG) -> str:
    """Topologically-layered rendering of a DAG.

    Each line shows one node with its parents, in topological order —
    compact enough for 100-node structures, exact for any size.
    """
    lines = []
    for node in dag.topological_order():
        parents = dag.parents(node)
        if parents:
            lines.append(f"{', '.join(map(str, parents))} -> {node}")
        else:
            lines.append(f"(root)  {node}")
    return "\n".join(lines)


def render_structure_summary(dag: DAG, response: "str | None" = None) -> str:
    """One-paragraph structural summary (node/edge counts, depth, fan-in)."""
    order = dag.topological_order()
    depth = {n: 0 for n in order}
    for n in order:
        for c in dag.children(n):
            depth[c] = max(depth[c], depth[n] + 1)
    max_depth = max(depth.values()) if depth else 0
    max_fan_in = max((dag.in_degree(n) for n in dag.nodes), default=0)
    parts = [
        f"{dag.n_nodes} nodes",
        f"{dag.n_edges} edges",
        f"depth {max_depth}",
        f"max fan-in {max_fan_in}",
        f"{len(dag.roots())} root(s)",
    ]
    if response is not None and response in dag:
        parts.append(f"response {response!r} with {dag.in_degree(response)} parents")
    return ", ".join(parts)
