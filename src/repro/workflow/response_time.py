"""Cardoso-style reduction: workflow → deterministic response-time ``f(X)``.

Section 3.3: *"The deterministic function f can be easily derived from
any workflow formed by any combination of four key workflow constructs:
sequence, parallel, choice and loop"*.  For the eDiaMoND workflow the
result is ``D = X1 + X2 + max(X3 + X5, X4 + X6)``.

Two reduction modes exist because ``f`` is consumed in two ways:

- ``mode="measurement"`` (default) — ``f`` evaluated on *monitored*
  per-transaction totals.  Under the monitoring convention that ``X_i``
  is the total elapsed time spent at service *i* during one transaction
  (0 if not invoked), a Choice reduces to a plain Sum of its branches
  (exactly one branch is nonzero) and a Loop to its body (repetitions
  already accumulated into the totals).  This mode is *exact* per
  transaction — with one documented exception: a Parallel nested inside
  a Loop, where the true response is a sum of per-iteration maxima while
  ``f`` computes the maximum of the summed totals, so ``f(X) <= D``
  (use :func:`has_parallel_under_loop` to detect the case).  The paper's
  evaluation workflows (sequence/parallel) are always exact.
- ``mode="expectation"`` — the symbolic expected-value reduction of
  Cardoso et al.: Choice becomes a probability-weighted sum, Loop scales
  its body by the expected iteration count ``1/(1-p)``.  Used for a
  priori capacity analysis when no measurements exist yet.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.exceptions import WorkflowError
from repro.workflow.constructs import (
    Activity,
    Choice,
    Loop,
    Parallel,
    Sequence,
    WorkflowNode,
)
from repro.workflow.expressions import (
    Expression,
    Max,
    Scale,
    Sum,
    Var,
    WeightedSum,
    simplify,
)

_MODES = ("measurement", "expectation")


def _reduce(node: WorkflowNode, mode: str) -> Expression:
    if isinstance(node, Activity):
        return Var(node.name)
    if isinstance(node, Sequence):
        return Sum([_reduce(s, mode) for s in node.steps])
    if isinstance(node, Parallel):
        return Max([_reduce(b, mode) for b in node.branches])
    if isinstance(node, Choice):
        if mode == "measurement":
            # Exactly one branch ran; the others measured 0.
            return Sum([_reduce(b, mode) for b in node.branches])
        return WeightedSum(
            [(p, _reduce(b, mode)) for p, b in zip(node.probabilities, node.branches)]
        )
    if isinstance(node, Loop):
        if mode == "measurement":
            # Totals already include every iteration.
            return _reduce(node.body, mode)
        return Scale(node.expected_iterations, _reduce(node.body, mode))
    raise WorkflowError(f"unknown workflow node {type(node)!r}")


class ResponseTimeFunction:
    """The deterministic ``f`` of Eq. 4, with provenance.

    Callable with ``{service: (n,) ndarray}`` and returning the ``(n,)``
    end-to-end response times the workflow implies.
    """

    def __init__(self, workflow: WorkflowNode, expression: Expression, mode: str):
        self.workflow = workflow
        self.expression = expression
        self.mode = mode

    @property
    def inputs(self) -> frozenset[str]:
        return self.expression.inputs

    def __call__(self, values: Mapping[str, np.ndarray]) -> np.ndarray:
        return self.expression(values)

    def to_string(self) -> str:
        return self.expression.to_string()

    def __repr__(self) -> str:
        return f"ResponseTimeFunction<D = {self.to_string()}>"


def has_parallel_under_loop(workflow: WorkflowNode) -> bool:
    """True if some Parallel construct lies inside a Loop body.

    In that configuration the measurement-mode ``f`` lower-bounds the
    true response time (sum of per-iteration maxima >= max of sums).
    """
    def visit(node: WorkflowNode, inside_loop: bool) -> bool:
        if isinstance(node, Parallel) and inside_loop:
            return True
        if isinstance(node, Loop):
            inside_loop = True
        return any(visit(child, inside_loop) for child in node.children())

    return visit(workflow, False)


def response_time_function(
    workflow: WorkflowNode, mode: str = "measurement"
) -> ResponseTimeFunction:
    """Reduce ``workflow`` to its deterministic response-time function.

    See the module docstring for the two modes.  The workflow is
    validated first; the returned function's ``inputs`` equal the
    workflow's service set (loops/choices included).
    """
    if mode not in _MODES:
        raise WorkflowError(f"mode must be one of {_MODES}, got {mode!r}")
    workflow.validate()
    expr = simplify(_reduce(workflow, mode))
    fn = ResponseTimeFunction(workflow, expr, mode)
    if fn.inputs != frozenset(workflow.services()):
        raise WorkflowError(
            "reduction lost services: "
            f"{sorted(frozenset(workflow.services()) - fn.inputs)}"
        )  # pragma: no cover - internal consistency guard
    return fn
