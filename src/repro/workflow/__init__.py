"""Workflow algebra and its two knowledge extractions.

A workflow is a composition of the paper's four constructs — sequence,
parallel, choice, loop (Section 3.3, after Cardoso et al.) — over named
service activities.  Two pieces of domain knowledge are derived from it:

1. the deterministic response-time function ``f(X)`` that parameterizes
   the Eq.-4 CPD of the response node (:mod:`repro.workflow.response_time`);
2. the KERT-BN DAG structure — immediate-upstream edges between service
   nodes plus resource-sharing nodes (:mod:`repro.workflow.structure`).
"""

from repro.workflow.constructs import (
    WorkflowNode,
    Activity,
    Sequence,
    Parallel,
    Choice,
    Loop,
)
from repro.workflow.expressions import (
    Expression,
    Var,
    Const,
    Sum,
    Max,
    WeightedSum,
    Scale,
)
from repro.workflow.response_time import ResponseTimeFunction, response_time_function
from repro.workflow.timeout import timeout_count_function
from repro.workflow.structure import workflow_edges, kert_bn_structure
from repro.workflow.generator import random_workflow
from repro.workflow.parser import workflow_to_dict, workflow_from_dict

__all__ = [
    "WorkflowNode",
    "Activity",
    "Sequence",
    "Parallel",
    "Choice",
    "Loop",
    "Expression",
    "Var",
    "Const",
    "Sum",
    "Max",
    "WeightedSum",
    "Scale",
    "ResponseTimeFunction",
    "response_time_function",
    "timeout_count_function",
    "workflow_edges",
    "kert_bn_structure",
    "random_workflow",
    "workflow_to_dict",
    "workflow_from_dict",
]
