"""Workflow algebra and its two knowledge extractions.

A workflow is a composition of the paper's four constructs — sequence,
parallel, choice, loop (Section 3.3, after Cardoso et al.) — over named
service activities.  Two pieces of domain knowledge are derived from it:

1. the deterministic response-time function ``f(X)`` that parameterizes
   the Eq.-4 CPD of the response node (:mod:`repro.workflow.response_time`);
2. the KERT-BN DAG structure — immediate-upstream edges between service
   nodes plus resource-sharing nodes (:mod:`repro.workflow.structure`).
"""

from repro.workflow.constructs import (
    Activity,
    Choice,
    Loop,
    Parallel,
    Sequence,
    WorkflowNode,
)
from repro.workflow.expressions import (
    Const,
    Expression,
    Max,
    Scale,
    Sum,
    Var,
    WeightedSum,
)
from repro.workflow.generator import random_workflow
from repro.workflow.parser import workflow_from_dict, workflow_to_dict
from repro.workflow.response_time import ResponseTimeFunction, response_time_function
from repro.workflow.structure import kert_bn_structure, workflow_edges
from repro.workflow.timeout import timeout_count_function

__all__ = [
    "WorkflowNode",
    "Activity",
    "Sequence",
    "Parallel",
    "Choice",
    "Loop",
    "Expression",
    "Var",
    "Const",
    "Sum",
    "Max",
    "WeightedSum",
    "Scale",
    "ResponseTimeFunction",
    "response_time_function",
    "timeout_count_function",
    "workflow_edges",
    "kert_bn_structure",
    "random_workflow",
    "workflow_to_dict",
    "workflow_from_dict",
]
