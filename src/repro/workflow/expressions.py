"""Vectorized expression trees over named variables.

The Cardoso reduction of a workflow produces one of these trees; it is
the deterministic ``f`` of the paper's Eq. 4.  Expressions are callables
mapping ``{name: (n,) ndarray}`` to an ``(n,)`` ndarray, so evaluating
``f`` over a whole monitoring window is a handful of NumPy ufunc calls —
no per-row Python loop.
"""

from __future__ import annotations

import abc
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import WorkflowError


class Expression(abc.ABC):
    """A deterministic function of named variables."""

    @property
    @abc.abstractmethod
    def inputs(self) -> frozenset[str]:
        """Names of the variables the expression reads."""

    @abc.abstractmethod
    def __call__(self, values: Mapping[str, np.ndarray]) -> np.ndarray:
        """Vectorized evaluation."""

    @abc.abstractmethod
    def to_string(self) -> str:
        """Human-readable form, e.g. ``X1 + max(X2, X3)``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}<{self.to_string()}>"

    # Operator sugar keeps hand-built expressions in tests readable.
    def __add__(self, other: "Expression") -> "Sum":
        return Sum([self, other])


def _as_array(values: Mapping[str, np.ndarray], name: str) -> np.ndarray:
    if name not in values:
        raise WorkflowError(f"expression input {name!r} missing from values")
    return np.asarray(values[name], dtype=float)


class Var(Expression):
    """A single named variable."""

    def __init__(self, name: str):
        self.name = str(name)

    @property
    def inputs(self) -> frozenset[str]:
        return frozenset([self.name])

    def __call__(self, values: Mapping[str, np.ndarray]) -> np.ndarray:
        return _as_array(values, self.name)

    def to_string(self) -> str:
        return self.name


class Const(Expression):
    """A constant (broadcast to the evaluation length)."""

    def __init__(self, value: float):
        self.value = float(value)

    @property
    def inputs(self) -> frozenset[str]:
        return frozenset()

    def __call__(self, values: Mapping[str, np.ndarray]) -> np.ndarray:
        lengths = {np.asarray(v).shape[0] for v in values.values()} or {1}
        n = max(lengths)
        return np.full(n, self.value)

    def to_string(self) -> str:
        return f"{self.value:g}"


class Sum(Expression):
    """Sum of sub-expressions — sequential composition."""

    def __init__(self, terms: Iterable[Expression]):
        self.terms = tuple(terms)
        if not self.terms:
            raise WorkflowError("Sum needs at least one term")

    @property
    def inputs(self) -> frozenset[str]:
        return frozenset().union(*(t.inputs for t in self.terms))

    def __call__(self, values: Mapping[str, np.ndarray]) -> np.ndarray:
        total = self.terms[0](values)
        for t in self.terms[1:]:
            total = total + t(values)
        return total

    def to_string(self) -> str:
        return " + ".join(
            t.to_string() if not isinstance(t, WeightedSum) else f"({t.to_string()})"
            for t in self.terms
        )


class Max(Expression):
    """Maximum of sub-expressions — parallel (AND-join) composition."""

    def __init__(self, terms: Iterable[Expression]):
        self.terms = tuple(terms)
        if len(self.terms) < 2:
            raise WorkflowError("Max needs at least two terms")

    @property
    def inputs(self) -> frozenset[str]:
        return frozenset().union(*(t.inputs for t in self.terms))

    def __call__(self, values: Mapping[str, np.ndarray]) -> np.ndarray:
        result = self.terms[0](values)
        for t in self.terms[1:]:
            result = np.maximum(result, t(values))
        return result

    def to_string(self) -> str:
        return "max(" + ", ".join(t.to_string() for t in self.terms) + ")"


class WeightedSum(Expression):
    """Probability-weighted sum — choice composition in expectation mode."""

    def __init__(self, weighted_terms: Iterable[tuple[float, Expression]]):
        self.weighted_terms: tuple[tuple[float, Expression], ...] = tuple(
            (float(w), t) for w, t in weighted_terms
        )
        if not self.weighted_terms:
            raise WorkflowError("WeightedSum needs at least one term")
        if any(w < 0 for w, _ in self.weighted_terms):
            raise WorkflowError("WeightedSum weights must be nonnegative")

    @property
    def inputs(self) -> frozenset[str]:
        return frozenset().union(*(t.inputs for _, t in self.weighted_terms))

    def __call__(self, values: Mapping[str, np.ndarray]) -> np.ndarray:
        w0, t0 = self.weighted_terms[0]
        total = w0 * t0(values)
        for w, t in self.weighted_terms[1:]:
            total = total + w * t(values)
        return total

    def to_string(self) -> str:
        return " + ".join(f"{w:g}*({t.to_string()})" for w, t in self.weighted_terms)


class Scale(Expression):
    """Scalar multiple — loop composition (expected iteration count)."""

    def __init__(self, factor: float, term: Expression):
        self.factor = float(factor)
        self.term = term
        if self.factor < 0:
            raise WorkflowError("Scale factor must be nonnegative")

    @property
    def inputs(self) -> frozenset[str]:
        return self.term.inputs

    def __call__(self, values: Mapping[str, np.ndarray]) -> np.ndarray:
        return self.factor * self.term(values)

    def to_string(self) -> str:
        return f"{self.factor:g}*({self.term.to_string()})"


def simplify(expr: Expression) -> Expression:
    """Flatten nested Sums/Maxes and collapse single-child wrappers.

    Keeps the printable form close to the paper's
    ``X1 + X2 + max(X3 + X5, X4 + X6)``.
    """
    if isinstance(expr, Sum):
        flat: list[Expression] = []
        for t in (simplify(t) for t in expr.terms):
            if isinstance(t, Sum):
                flat.extend(t.terms)
            else:
                flat.append(t)
        return flat[0] if len(flat) == 1 else Sum(flat)
    if isinstance(expr, Max):
        flat = []
        for t in (simplify(t) for t in expr.terms):
            if isinstance(t, Max):
                flat.extend(t.terms)
            else:
                flat.append(t)
        return flat[0] if len(flat) == 1 else Max(flat)
    if isinstance(expr, Scale):
        inner = simplify(expr.term)
        if expr.factor == 1.0:
            return inner
        if isinstance(inner, Scale):
            return Scale(expr.factor * inner.factor, inner.term)
        return Scale(expr.factor, inner)
    if isinstance(expr, WeightedSum):
        return WeightedSum([(w, simplify(t)) for w, t in expr.weighted_terms])
    return expr
