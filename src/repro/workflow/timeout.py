"""Timeout-request-count reduction.

Section 3.3 notes that Eq. 4 also covers other transaction-oriented
metrics, naming the *timeout request count*: there ``D`` counts timed-out
end-to-end transactions, ``X`` holds per-service sub-transaction timeout
counts, and *"f should take the form of* ``D = Σ X_i``" — counts add
regardless of sequential/parallel composition.
"""

from __future__ import annotations

from repro.workflow.constructs import WorkflowNode
from repro.workflow.expressions import Sum, Var, simplify
from repro.workflow.response_time import ResponseTimeFunction


def timeout_count_function(workflow: WorkflowNode) -> ResponseTimeFunction:
    """``f(X) = Σ_i X_i`` over the workflow's services."""
    workflow.validate()
    expr = simplify(Sum([Var(s) for s in workflow.services()]))
    return ResponseTimeFunction(workflow, expr, mode="count")
