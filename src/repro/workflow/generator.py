"""Random workflow generation for the simulation studies.

The Figure 3–5 experiments run over "simulated services … assembled
together by different workflows".  :func:`random_workflow` produces a
random composition of the four constructs over exactly ``n`` uniquely
named services, with knobs for branching factor and which constructs are
allowed (the evaluation figures use sequence/parallel shapes, matching
the paper's response-time algebra of sums and maxes).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import WorkflowError
from repro.utils.rng import ensure_rng
from repro.workflow.constructs import (
    Activity,
    Choice,
    Loop,
    Parallel,
    Sequence,
    WorkflowNode,
)


def random_workflow(
    n_services: int,
    rng=None,
    service_prefix: str = "X",
    start_index: int = 1,
    p_parallel: float = 0.35,
    p_choice: float = 0.0,
    p_loop: float = 0.0,
    max_branches: int = 3,
    loop_continue_prob: float = 0.3,
) -> WorkflowNode:
    """Generate a random workflow over ``n_services`` named services.

    Services are named ``{service_prefix}{start_index}`` …; the recursive
    splitter partitions the name pool and chooses a construct for each
    composite node: Parallel with ``p_parallel``, Choice with
    ``p_choice``, Loop wrapping with ``p_loop``, Sequence otherwise.
    """
    if n_services < 1:
        raise WorkflowError(f"need >= 1 service, got {n_services}")
    if p_parallel + p_choice > 1.0:
        raise WorkflowError("p_parallel + p_choice must be <= 1")
    rng = ensure_rng(rng)
    names = [f"{service_prefix}{start_index + i}" for i in range(n_services)]

    def build(pool: list[str]) -> WorkflowNode:
        if len(pool) == 1:
            node: WorkflowNode = Activity(pool[0])
        else:
            n_parts = int(rng.integers(2, min(max_branches, len(pool)) + 1))
            # Random composition split preserving order.
            cuts = np.sort(
                rng.choice(np.arange(1, len(pool)), size=n_parts - 1, replace=False)
            )
            parts = [
                pool[int(a):int(b)]
                for a, b in zip(np.concatenate([[0], cuts]),
                                np.concatenate([cuts, [len(pool)]]))
            ]
            subtrees = [build(p) for p in parts]
            u = rng.random()
            if u < p_parallel and len(subtrees) >= 2:
                node = Parallel(subtrees)
            elif u < p_parallel + p_choice and len(subtrees) >= 2:
                probs = rng.dirichlet(np.ones(len(subtrees)))
                node = Choice(subtrees, probs.tolist())
            else:
                node = Sequence(subtrees)
        if p_loop > 0 and rng.random() < p_loop:
            node = Loop(node, loop_continue_prob)
        return node

    workflow = build(names)
    workflow.validate()
    return workflow
