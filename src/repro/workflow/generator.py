"""Random workflow generation for the simulation studies.

The Figure 3–5 experiments run over "simulated services … assembled
together by different workflows".  :func:`random_workflow` produces a
random composition of the four constructs over exactly ``n`` uniquely
named services, with knobs for branching factor and which constructs are
allowed.  The evaluation figures use sequence/parallel shapes (the
paper's response-time algebra of sums and maxes); the scenario corpus
additionally enables the choice/loop paths, which therefore validate
their probability knobs strictly here.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import WorkflowError
from repro.utils.rng import ensure_rng
from repro.workflow.constructs import (
    Activity,
    Choice,
    Loop,
    Parallel,
    Sequence,
    WorkflowNode,
)

#: Loop-termination guard: ``continue_prob`` above this makes expected
#: iteration counts (``1/(1-p)``) explode and simulated transactions
#: effectively never finish, so generation refuses it outright.
MAX_LOOP_CONTINUE_PROB = 0.9


def _check_prob(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise WorkflowError(f"{name} must be in [0, 1], got {value}")
    return float(value)


def random_workflow(
    n_services: int,
    rng=None,
    service_prefix: str = "X",
    start_index: int = 1,
    p_parallel: float = 0.35,
    p_choice: float = 0.0,
    p_loop: float = 0.0,
    max_branches: int = 3,
    loop_continue_prob: float = 0.3,
) -> WorkflowNode:
    """Generate a random workflow over ``n_services`` named services.

    Services are named ``{service_prefix}{start_index}`` …; the recursive
    splitter partitions the name pool and chooses a construct for each
    composite node: Parallel with ``p_parallel``, Choice with
    ``p_choice``, Sequence otherwise; any node is additionally wrapped in
    a Loop with ``p_loop``.  Invalid probability combinations raise
    :class:`~repro.exceptions.WorkflowError`: each probability must lie
    in ``[0, 1]``, ``p_parallel + p_choice`` must not exceed 1 (they
    split one draw), and ``loop_continue_prob`` must stay at or below
    :data:`MAX_LOOP_CONTINUE_PROB` so generated loops terminate quickly
    enough to simulate.
    """
    if n_services < 1:
        raise WorkflowError(f"need >= 1 service, got {n_services}")
    p_parallel = _check_prob("p_parallel", p_parallel)
    p_choice = _check_prob("p_choice", p_choice)
    p_loop = _check_prob("p_loop", p_loop)
    if p_parallel + p_choice > 1.0:
        raise WorkflowError(
            f"p_parallel + p_choice must be <= 1, got "
            f"{p_parallel} + {p_choice} = {p_parallel + p_choice}"
        )
    if max_branches < 2:
        raise WorkflowError(f"max_branches must be >= 2, got {max_branches}")
    _check_prob("loop_continue_prob", loop_continue_prob)
    if p_loop > 0.0 and loop_continue_prob > MAX_LOOP_CONTINUE_PROB:
        expected = (
            f"{1.0 / (1.0 - loop_continue_prob):.1f}"
            if loop_continue_prob < 1.0
            else "infinite"
        )
        raise WorkflowError(
            f"loop_continue_prob={loop_continue_prob} exceeds the "
            f"termination guard {MAX_LOOP_CONTINUE_PROB} (expected "
            f"iterations 1/(1-p) = {expected} per loop would dominate "
            f"every transaction)"
        )
    rng = ensure_rng(rng)
    names = [f"{service_prefix}{start_index + i}" for i in range(n_services)]

    def build(pool: list[str]) -> WorkflowNode:
        if len(pool) == 1:
            node: WorkflowNode = Activity(pool[0])
        else:
            n_parts = int(rng.integers(2, min(max_branches, len(pool)) + 1))
            # Random composition split preserving order.
            cuts = np.sort(
                rng.choice(np.arange(1, len(pool)), size=n_parts - 1, replace=False)
            )
            parts = [
                pool[int(a):int(b)]
                for a, b in zip(np.concatenate([[0], cuts]),
                                np.concatenate([cuts, [len(pool)]]))
            ]
            subtrees = [build(p) for p in parts]
            u = rng.random()
            if u < p_parallel and len(subtrees) >= 2:
                node = Parallel(subtrees)
            elif u < p_parallel + p_choice and len(subtrees) >= 2:
                probs = rng.dirichlet(np.ones(len(subtrees)))
                # Renormalize: Dirichlet draws carry floating-point
                # round-off and Choice validates the sum to 1e-9.
                probs = probs / probs.sum()
                node = Choice(subtrees, probs.tolist())
            else:
                node = Sequence(subtrees)
        if p_loop > 0 and rng.random() < p_loop:
            node = Loop(node, loop_continue_prob)
        return node

    workflow = build(names)
    workflow.validate()
    return workflow
