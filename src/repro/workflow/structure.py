"""Workflow → KERT-BN structure derivation (Section 3.2).

Two knowledge sources shape the DAG:

1. **Workflow** — an edge ``X_i → X_j`` whenever service *i* is the
   *immediate upstream* service of *j*: a burst at *i* propagates to
   *j*'s input, the "bottleneck shift" phenomenon the paper wants the
   model to capture.  Only direct relationships are encoded — the paper
   explicitly keeps "the simplest DAG representing the workflow".
2. **Resource sharing** — services sharing a CPU / memory / network are
   made parents of an explicit node embodying that resource.

The response node ``D`` depends on *all* elapsed-time nodes:
``P_D(D | Φ(D)) ≡ P_D(D | X)``.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.bn.dag import DAG
from repro.exceptions import WorkflowError
from repro.workflow.constructs import (
    Activity,
    Choice,
    Loop,
    Parallel,
    Sequence,
    WorkflowNode,
)


def _entries(node: WorkflowNode) -> tuple[str, ...]:
    """Services that receive the incoming request of this subtree."""
    if isinstance(node, Activity):
        return (node.name,)
    if isinstance(node, Sequence):
        return _entries(node.steps[0])
    if isinstance(node, (Parallel, Choice)):
        return tuple(s for b in node.branches for s in _entries(b))
    if isinstance(node, Loop):
        return _entries(node.body)
    raise WorkflowError(f"unknown workflow node {type(node)!r}")


def _exits(node: WorkflowNode) -> tuple[str, ...]:
    """Services whose completion releases this subtree's response."""
    if isinstance(node, Activity):
        return (node.name,)
    if isinstance(node, Sequence):
        return _exits(node.steps[-1])
    if isinstance(node, (Parallel, Choice)):
        return tuple(s for b in node.branches for s in _exits(b))
    if isinstance(node, Loop):
        return _exits(node.body)
    raise WorkflowError(f"unknown workflow node {type(node)!r}")


def workflow_edges(workflow: WorkflowNode) -> tuple[tuple[str, str], ...]:
    """Immediate-upstream edges ``(upstream, downstream)``.

    A loop's internal back edge (exit → entry of the body) is *not*
    emitted: a Bayesian network must stay acyclic, and within one
    monitored transaction the iterations are already aggregated into the
    per-service totals.
    """
    workflow.validate()
    edges: list[tuple[str, str]] = []

    def visit(node: WorkflowNode) -> None:
        if isinstance(node, Sequence):
            for step in node.steps:
                visit(step)
            for left, right in zip(node.steps, node.steps[1:]):
                for u in _exits(left):
                    for v in _entries(right):
                        edges.append((u, v))
        elif isinstance(node, (Parallel, Choice)):
            for b in node.branches:
                visit(b)
        elif isinstance(node, Loop):
            visit(node.body)
        elif not isinstance(node, Activity):
            raise WorkflowError(f"unknown workflow node {type(node)!r}")

    visit(workflow)
    return tuple(edges)


def kert_bn_structure(
    workflow: WorkflowNode,
    response: str = "D",
    resource_groups: "Mapping[str, Iterable[str]] | None" = None,
) -> DAG:
    """Build the full KERT-BN DAG from domain knowledge alone.

    Parameters
    ----------
    workflow:
        The service workflow (determines the ``X_i → X_j`` edges).
    response:
        Name of the end-to-end response node; parents are *all* services.
    resource_groups:
        Optional ``{resource_node_name: [services sharing it]}``; each
        resource becomes a node whose parents are the sharing services
        (Section 3.2's resource-sharing representation).

    The structural cost is linear in the workflow size — this is the
    "little cost" structure acquisition the paper contrasts with
    exponential structure search.
    """
    services = workflow.services()
    if response in services:
        raise WorkflowError(
            f"response node name {response!r} collides with a service name"
        )
    dag = DAG(nodes=services)
    for u, v in workflow_edges(workflow):
        dag.add_edge(u, v)
    dag.add_node(response)
    for s in services:
        dag.add_edge(s, response)
    if resource_groups:
        for rnode, members in resource_groups.items():
            members = tuple(members)
            if rnode in dag:
                raise WorkflowError(
                    f"resource node {rnode!r} collides with an existing node"
                )
            unknown = [m for m in members if m not in services]
            if unknown:
                raise WorkflowError(
                    f"resource group {rnode!r} references unknown services {unknown}"
                )
            if len(members) < 2:
                raise WorkflowError(
                    f"resource group {rnode!r} must contain >= 2 services"
                )
            dag.add_node(rnode)
            for m in members:
                dag.add_edge(m, rnode)
    return dag
