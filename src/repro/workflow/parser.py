"""JSON-friendly (de)serialization of workflow ASTs.

Workflows are "well documented at system design stage" (Section 3.2) —
in practice they arrive as documents.  These functions define the
interchange format:

.. code-block:: json

    {"sequence": [
        {"activity": "image_list"},
        {"activity": "work_list"},
        {"parallel": [
            {"sequence": [{"activity": "loc_l"}, {"activity": "dai_l"}]},
            {"sequence": [{"activity": "loc_r"}, {"activity": "dai_r"}]}
        ]}
    ]}
"""

from __future__ import annotations

import json
from typing import Any

from repro.exceptions import WorkflowError
from repro.workflow.constructs import (
    Activity,
    Choice,
    Loop,
    Parallel,
    Sequence,
    WorkflowNode,
)


def workflow_to_dict(node: WorkflowNode) -> dict[str, Any]:
    """AST → plain dict (JSON-serializable)."""
    if isinstance(node, Activity):
        return {"activity": node.name}
    if isinstance(node, Sequence):
        return {"sequence": [workflow_to_dict(s) for s in node.steps]}
    if isinstance(node, Parallel):
        return {"parallel": [workflow_to_dict(b) for b in node.branches]}
    if isinstance(node, Choice):
        return {
            "choice": [workflow_to_dict(b) for b in node.branches],
            "probabilities": list(node.probabilities),
        }
    if isinstance(node, Loop):
        return {
            "loop": workflow_to_dict(node.body),
            "continue_prob": node.continue_prob,
        }
    raise WorkflowError(f"unknown workflow node {type(node)!r}")


def workflow_from_dict(spec: "dict[str, Any]") -> WorkflowNode:
    """Plain dict → AST, validating as it goes."""
    if not isinstance(spec, dict):
        raise WorkflowError(f"workflow spec must be a dict, got {type(spec)!r}")
    kinds = [
        k for k in ("activity", "sequence", "parallel", "choice", "loop") if k in spec
    ]
    if len(kinds) != 1:
        raise WorkflowError(
            f"spec must contain exactly one construct key, got {sorted(spec)}"
        )
    kind = kinds[0]
    if kind == "activity":
        return Activity(spec["activity"])
    if kind == "sequence":
        return Sequence([workflow_from_dict(s) for s in spec["sequence"]])
    if kind == "parallel":
        return Parallel([workflow_from_dict(b) for b in spec["parallel"]])
    if kind == "choice":
        if "probabilities" not in spec:
            raise WorkflowError("choice spec needs 'probabilities'")
        return Choice(
            [workflow_from_dict(b) for b in spec["choice"]],
            spec["probabilities"],
        )
    if "continue_prob" not in spec:
        raise WorkflowError("loop spec needs 'continue_prob'")
    return Loop(workflow_from_dict(spec["loop"]), spec["continue_prob"])


def workflow_to_json(node: WorkflowNode, indent: "int | None" = None) -> str:
    """AST → JSON string."""
    return json.dumps(workflow_to_dict(node), indent=indent)


def workflow_from_json(text: str) -> WorkflowNode:
    """JSON string → AST."""
    return workflow_from_dict(json.loads(text))
