"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Invalid graph operation (cycle introduction, unknown node, ...)."""


class CPDError(ReproError):
    """Invalid conditional probability distribution definition or use."""


class InferenceError(ReproError):
    """Inference query cannot be answered (bad evidence, no support, ...)."""


class LearningError(ReproError):
    """Parameter or structure learning failed (degenerate data, ...)."""


class WorkflowError(ReproError):
    """Malformed workflow definition or reduction failure."""


class SimulationError(ReproError):
    """Discrete-event simulation error (dangling call, bad config, ...)."""


class CommunicationError(SimulationError):
    """Agent-to-agent message delivery failure (bad channel use, invalid
    fault configuration, undeliverable payload, ...)."""


class DataError(ReproError):
    """Dataset construction / access error."""


class SchedulingError(ReproError):
    """Model (re)construction schedule misconfiguration."""


class ServingError(ReproError):
    """Model-serving layer failure (registry misuse, exhausted fallback
    chain, shed/denied queries surfaced in strict mode, ...)."""
