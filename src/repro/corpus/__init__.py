"""Scenario corpus: seeded topology/delay/arrival diversity for the matrix.

Every experiment before this package ran the one canned eDiaMoND
workflow.  ``repro.corpus`` generates *families* of scenarios — random
Cardoso compositions (sequence/parallel/choice/loop, nested, 10–500
services) paired with queueing-theoretic delay processes (M/M/k,
G/G/1), bursty/diurnal arrival modulation and failure-storm windows —
and derives each scenario's response-time function and KERT-BN
structure automatically.  The (family × size × delay-regime) benchmark
matrix in ``benchmarks/test_corpus_matrix.py`` runs the KERT-BN vs
NRT-BN comparison over it nightly.
"""

from repro.corpus.generate import (
    GeneratedScenario,
    build_scenario,
    failure_storm,
    scenario_rng,
)
from repro.corpus.matrix import (
    format_cell_report,
    run_cell,
    summarize,
)
from repro.corpus.spec import (
    ARRIVAL_REGIMES,
    DELAY_REGIMES,
    FAMILY_KNOBS,
    ScenarioSpec,
    default_corpus,
    spec_by_name,
)

__all__ = [
    "ARRIVAL_REGIMES",
    "DELAY_REGIMES",
    "FAMILY_KNOBS",
    "GeneratedScenario",
    "ScenarioSpec",
    "build_scenario",
    "default_corpus",
    "failure_storm",
    "format_cell_report",
    "run_cell",
    "scenario_rng",
    "spec_by_name",
    "summarize",
]
