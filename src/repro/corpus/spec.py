"""Scenario-corpus axes: what one corpus cell varies.

A :class:`ScenarioSpec` pins one point in the (topology family ×
environment size × delay regime) space the nightly benchmark matrix
sweeps, plus the arrival-modulation and failure-storm riders.  Specs are
frozen and hashable so the same spec + seed always regenerates the same
environment (the corpus determinism contract, property-tested in
``tests/corpus``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SimulationError

#: Construct-probability knobs handed to
#: :func:`repro.workflow.generator.random_workflow` per topology family.
FAMILY_KNOBS: dict[str, dict[str, float]] = {
    "sequence": {"p_parallel": 0.0, "p_choice": 0.0, "p_loop": 0.0},
    "parallel": {"p_parallel": 0.5, "p_choice": 0.0, "p_loop": 0.0},
    "choice": {"p_parallel": 0.0, "p_choice": 0.45, "p_loop": 0.0},
    "loop": {"p_parallel": 0.0, "p_choice": 0.0, "p_loop": 0.3},
    "mixed": {"p_parallel": 0.3, "p_choice": 0.2, "p_loop": 0.15},
}

DELAY_REGIMES = ("lognormal", "mmk", "gg1")
ARRIVAL_REGIMES = ("steady", "bursty", "diurnal")

#: Default arrival modulation per delay regime: the queueing-theoretic
#: regimes get the non-stationary arrival processes that motivate them.
ARRIVALS_FOR_DELAY = {"lognormal": "steady", "mmk": "bursty", "gg1": "diurnal"}

MIN_SERVICES = 1
MAX_SERVICES = 500


@dataclass(frozen=True)
class ScenarioSpec:
    """One corpus cell: topology family, size, delay regime, riders."""

    family: str
    n_services: int
    delay: str
    arrivals: str = "steady"
    failure_storm: bool = False
    utilization: float = 0.6

    def __post_init__(self) -> None:
        if self.family not in FAMILY_KNOBS:
            raise SimulationError(
                f"family must be one of {sorted(FAMILY_KNOBS)}, "
                f"got {self.family!r}"
            )
        if not MIN_SERVICES <= self.n_services <= MAX_SERVICES:
            raise SimulationError(
                f"n_services must be in [{MIN_SERVICES}, {MAX_SERVICES}], "
                f"got {self.n_services}"
            )
        if self.delay not in DELAY_REGIMES:
            raise SimulationError(
                f"delay must be one of {DELAY_REGIMES}, got {self.delay!r}"
            )
        if self.arrivals not in ARRIVAL_REGIMES:
            raise SimulationError(
                f"arrivals must be one of {ARRIVAL_REGIMES}, "
                f"got {self.arrivals!r}"
            )
        if not 0.0 < self.utilization < 1.0:
            raise SimulationError(
                f"utilization must be in (0, 1), got {self.utilization}"
            )

    @property
    def name(self) -> str:
        """Stable cell id, e.g. ``mixed_n10_mmk``."""
        return f"{self.family}_n{self.n_services}_{self.delay}"

    def describe(self) -> str:
        riders = [self.arrivals]
        if self.failure_storm:
            riders.append("failure-storm")
        return (
            f"{self.name}: {self.family} topology, "
            f"{self.n_services} services, {self.delay} delays "
            f"(util {self.utilization:g}), {'+'.join(riders)} arrivals"
        )


def default_corpus(
    families: tuple[str, ...] = ("sequence", "parallel", "mixed"),
    sizes: tuple[int, ...] = (10, 40),
    delays: tuple[str, ...] = DELAY_REGIMES,
) -> tuple[ScenarioSpec, ...]:
    """The canonical (family × size × delay-regime) benchmark matrix.

    Arrival modulation follows the delay regime
    (:data:`ARRIVALS_FOR_DELAY`) and the ``mixed`` family — the one
    exercising choice/loop constructs — additionally runs under failure
    storms, so every corpus sweep covers bursty, diurnal and faulty
    operation without multiplying the cell count.
    """
    specs = []
    for family in families:
        for n in sizes:
            for delay in delays:
                specs.append(
                    ScenarioSpec(
                        family=family,
                        n_services=n,
                        delay=delay,
                        arrivals=ARRIVALS_FOR_DELAY[delay],
                        failure_storm=(family == "mixed"),
                    )
                )
    return tuple(specs)


def spec_by_name(
    name: str, corpus: "tuple[ScenarioSpec, ...] | None" = None
) -> ScenarioSpec:
    """Look up one cell of ``corpus`` (default corpus if omitted)."""
    cells = corpus if corpus is not None else default_corpus()
    for spec in cells:
        if spec.name == name:
            return spec
    raise SimulationError(
        f"unknown corpus cell {name!r} (known: {[s.name for s in cells]})"
    )
