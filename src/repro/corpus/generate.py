"""Seeded scenario generation: spec → ready-to-simulate environment.

:func:`build_scenario` turns a :class:`~repro.corpus.spec.ScenarioSpec`
into a fully assembled
:class:`~repro.simulator.environment.SimulatedEnvironment` — random
Cardoso topology, per-service delay processes, arrival modulation,
optional failure-storm windows — and derives the domain knowledge the
KERT-BN consumes (the ``f(X)`` expression and the network structure)
automatically from the sampled workflow.

Everything is keyed off ``(spec, seed)`` through one
:class:`numpy.random.SeedSequence`, so regeneration is bit-identical
(the determinism property test in ``tests/corpus`` holds the line).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.bn.dag import DAG
from repro.corpus.spec import FAMILY_KNOBS, ScenarioSpec
from repro.simulator.delays import GG1, DelayDistribution, LogNormal, MMk
from repro.simulator.environment import SimulatedEnvironment
from repro.simulator.faults import Degradation, FaultSchedule
from repro.simulator.service import Host, ServiceSpec
from repro.simulator.workload import (
    BurstyWorkload,
    DiurnalWorkload,
    OpenWorkload,
    Workload,
)
from repro.workflow.generator import random_workflow
from repro.workflow.response_time import ResponseTimeFunction

#: Per-service mean processing-delay range (log-uniform), seconds.
SERVICE_MEAN_RANGE = (0.05, 0.30)
#: Baseline arrival rate (requests/second) for every arrival regime.
BASE_ARRIVAL_RATE = 0.3
#: Simulated-time horizon (seconds) failure-storm windows are placed in.
STORM_HORIZON = 600.0


@dataclass
class GeneratedScenario:
    """One realized corpus scenario plus its derived domain knowledge."""

    spec: ScenarioSpec
    seed: int
    env: SimulatedEnvironment
    f: ResponseTimeFunction
    structure: DAG

    def describe(self) -> str:
        return (
            f"{self.spec.describe()}\n"
            f"  f: {self.env.response} = {self.f.to_string()}\n"
            f"  structure: {self.structure.n_nodes} nodes, "
            f"{self.structure.n_edges} edges (derived, not learned)"
        )


def scenario_rng(spec: ScenarioSpec, seed: int) -> np.random.Generator:
    """The one RNG all of ``(spec, seed)``'s randomness flows from."""
    return np.random.default_rng([seed, zlib.crc32(spec.name.encode())])


def _delay_for(
    spec: ScenarioSpec, mean: float, rng: np.random.Generator
) -> tuple[DelayDistribution, bool]:
    """One service's delay process and whether the engine should queue it.

    The queueing-theoretic regimes model their own waiting time, so the
    engine's FIFO queue is disabled for them (``queueing=False``) to
    avoid double-counting the wait.
    """
    if spec.delay == "lognormal":
        sigma = float(rng.uniform(0.25, 0.55))
        return LogNormal(mean, sigma), True
    utilization = float(
        np.clip(spec.utilization + rng.uniform(-0.1, 0.1), 0.05, 0.95)
    )
    if spec.delay == "mmk":
        servers = int(rng.choice((1, 2, 4)))
        return MMk(mean, utilization, servers=servers), False
    scv_a = float(rng.uniform(0.5, 2.5))
    scv_s = float(rng.uniform(0.5, 2.5))
    return GG1(mean, utilization, scv_arrival=scv_a, scv_service=scv_s), False


def _workload_for(spec: ScenarioSpec) -> Workload:
    if spec.arrivals == "steady":
        return OpenWorkload(rate=BASE_ARRIVAL_RATE)
    if spec.arrivals == "bursty":
        return BurstyWorkload(
            base_rate=BASE_ARRIVAL_RATE * 0.75,
            burst_rate=BASE_ARRIVAL_RATE * 3.0,
            mean_base_duration=80.0,
            mean_burst_duration=20.0,
        )
    return DiurnalWorkload(
        base_rate=BASE_ARRIVAL_RATE, amplitude=0.6, period=240.0
    )


def failure_storm(
    services: tuple[str, ...],
    rng: np.random.Generator,
    n_windows: int = 3,
    horizon: float = STORM_HORIZON,
) -> FaultSchedule:
    """A storm of time-boxed slowdowns hitting random services.

    Each window degrades one service by a 2–6× factor for 2–8% of the
    horizon — the "failure storm" regime the autonomic manager is meant
    to survive, reused from :mod:`repro.simulator.faults`.
    """
    windows = []
    for _ in range(n_windows):
        service = str(rng.choice(list(services)))
        start = float(rng.uniform(0.0, 0.8 * horizon))
        duration = float(rng.uniform(0.02, 0.08) * horizon)
        factor = float(rng.uniform(2.0, 6.0))
        windows.append(Degradation(service, start, start + duration, factor))
    return FaultSchedule(tuple(windows))


def build_scenario(
    spec: ScenarioSpec,
    seed: int = 0,
    services_per_host: int = 3,
    contention: float = 0.05,
    measurement_noise: float = 0.02,
) -> GeneratedScenario:
    """Realize one corpus cell deterministically from ``(spec, seed)``."""
    rng = scenario_rng(spec, seed)
    knobs = FAMILY_KNOBS[spec.family]
    workflow = random_workflow(
        spec.n_services,
        rng,
        p_parallel=knobs["p_parallel"],
        p_choice=knobs["p_choice"],
        p_loop=knobs["p_loop"],
    )
    names = workflow.services()

    n_hosts = max(1, int(np.ceil(spec.n_services / services_per_host)))
    hosts = tuple(
        Host(f"host{h}", contention=contention) for h in range(n_hosts)
    )
    placements = rng.integers(0, n_hosts, size=spec.n_services)
    lo, hi = SERVICE_MEAN_RANGE
    means = np.exp(rng.uniform(np.log(lo), np.log(hi), size=spec.n_services))
    couplings = rng.uniform(0.05, 0.30, size=spec.n_services)
    sensitivities = rng.uniform(0.0, 1.0, size=spec.n_services)

    services = []
    for i, name in enumerate(names):
        delay, queueing = _delay_for(spec, float(means[i]), rng)
        services.append(
            ServiceSpec(
                name=name,
                delay=delay,
                host=f"host{int(placements[i])}",
                demand_sensitivity=float(sensitivities[i]),
                upstream_coupling=float(couplings[i]),
                queueing=queueing,
            )
        )

    faults = (
        failure_storm(names, rng) if spec.failure_storm else None
    )
    env = SimulatedEnvironment(
        workflow=workflow,
        services=tuple(services),
        hosts=hosts,
        workload=_workload_for(spec),
        demand_sigma=0.25,
        measurement_noise=measurement_noise,
        faults=faults,
    )
    return GeneratedScenario(
        spec=spec,
        seed=seed,
        env=env,
        f=env.response_time_function(),
        structure=env.knowledge_structure(),
    )
