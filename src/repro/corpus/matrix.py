"""KERT-BN vs NRT-BN comparison over corpus cells.

:func:`run_cell` realizes one corpus scenario, draws fresh train/test
data, builds the continuous KERT-BN (workflow knowledge) and NRT-BN (K2
structure search) on the same training set, and records the paper's two
currencies for each model: *accuracy* (per-row test log10-likelihood)
and *cost* (construction seconds, likelihood-scoring throughput).
:func:`summarize` folds the per-cell records into the aggregate metrics
``check_regression.py --suite corpus`` gates.
"""

from __future__ import annotations

import time
from typing import Mapping

import numpy as np

from repro.corpus.generate import GeneratedScenario, build_scenario
from repro.corpus.spec import ScenarioSpec
from repro.core.kertbn import build_continuous_kertbn
from repro.core.nrtbn import build_continuous_nrtbn
from repro.exceptions import SimulationError

DEFAULT_N_TRAIN = 60
DEFAULT_N_TEST = 120


def _score_throughput(model, data, min_seconds: float = 0.05) -> float:
    """Likelihood-scoring rows/second (the serving-side inference cost)."""
    model.log10_likelihood(data)  # warm caches outside the timing
    reps = 0
    t0 = time.perf_counter()
    while True:
        model.log10_likelihood(data)
        reps += 1
        elapsed = time.perf_counter() - t0
        if elapsed >= min_seconds or reps >= 50:
            break
    return reps * data.n_rows / elapsed


def run_cell(
    spec: ScenarioSpec,
    seed: int = 0,
    n_train: int = DEFAULT_N_TRAIN,
    n_test: int = DEFAULT_N_TEST,
    scenario: "GeneratedScenario | None" = None,
) -> dict:
    """Run the KERT-BN vs NRT-BN comparison for one corpus cell."""
    if n_train < 2 or n_test < 2:
        raise SimulationError("need n_train >= 2 and n_test >= 2")
    if scenario is None:
        scenario = build_scenario(spec, seed)
    env = scenario.env
    train, test = env.train_test(n_train, n_test, rng=seed + 1)

    kert = build_continuous_kertbn(env.workflow, train)
    nrt = build_continuous_nrtbn(train, rng=seed + 2)

    kert_ll = kert.log10_likelihood(test) / test.n_rows
    nrt_ll = nrt.log10_likelihood(test) / test.n_rows
    kert_build = kert.report.construction_seconds
    nrt_build = nrt.report.construction_seconds
    return {
        "family": spec.family,
        "n_services": spec.n_services,
        "delay": spec.delay,
        "arrivals": spec.arrivals,
        "failure_storm": spec.failure_storm,
        "seed": seed,
        "n_train": n_train,
        "n_test": n_test,
        "f_depth": scenario.env.workflow.depth(),
        "kert": {
            "log10_per_row": float(kert_ll),
            "build_s": float(kert_build),
            "score_rows_per_s": _score_throughput(kert, test),
        },
        "nrt": {
            "log10_per_row": float(nrt_ll),
            "build_s": float(nrt_build),
            "score_rows_per_s": _score_throughput(nrt, test),
        },
        "log10_gap_per_row": float(kert_ll - nrt_ll),
        "nrt_over_kert_build": float(
            nrt_build / kert_build if kert_build > 0 else float("inf")
        ),
        "kert_win": bool(kert_ll >= nrt_ll - 1e-9),
    }


def summarize(cells: Mapping[str, Mapping]) -> dict:
    """Aggregate per-cell records into the gated corpus metrics.

    - ``kert_win_fraction`` — fraction of cells where KERT-BN's test
      likelihood is at least NRT-BN's (the paper's accuracy claim);
    - ``median_log10_gap_per_row`` — median per-row likelihood advantage
      (median, because NRT-BN degrades catastrophically on large cells
      and a mean would be dominated by those outliers);
    - ``nrt_over_kert_build_median`` — median construction-cost ratio
      (machine-independent: both builds run on the same machine).
    """
    if not cells:
        raise SimulationError("no corpus cells to summarize")
    gaps = [float(c["log10_gap_per_row"]) for c in cells.values()]
    ratios = [float(c["nrt_over_kert_build"]) for c in cells.values()]
    wins = [bool(c["kert_win"]) for c in cells.values()]
    return {
        "n_cells": len(wins),
        "kert_win_fraction": float(np.mean(wins)),
        "median_log10_gap_per_row": float(np.median(gaps)),
        "mean_log10_gap_per_row": float(np.mean(gaps)),
        "nrt_over_kert_build_median": float(np.median(ratios)),
    }


def format_cell_report(name: str, cell: Mapping) -> str:
    """One cell's human-readable comparison (nightly CI artifact)."""
    k, n = cell["kert"], cell["nrt"]
    lines = [
        f"== corpus cell {name} ==",
        f"family={cell['family']} n_services={cell['n_services']} "
        f"delay={cell['delay']} arrivals={cell['arrivals']} "
        f"failure_storm={cell['failure_storm']} seed={cell['seed']}",
        f"{'':14s}{'KERT-BN':>14s}{'NRT-BN':>14s}",
        f"{'log10/row':14s}{k['log10_per_row']:>14.4f}"
        f"{n['log10_per_row']:>14.4f}",
        f"{'build (s)':14s}{k['build_s']:>14.6f}{n['build_s']:>14.6f}",
        f"{'score rows/s':14s}{k['score_rows_per_s']:>14.0f}"
        f"{n['score_rows_per_s']:>14.0f}",
        f"gap/row={cell['log10_gap_per_row']:+.4f} "
        f"build-ratio={cell['nrt_over_kert_build']:.1f}x "
        f"winner={'KERT-BN' if cell['kert_win'] else 'NRT-BN'}",
    ]
    return "\n".join(lines)
