"""Simulated agent-to-agent messaging with payload accounting and faults.

The paper proposes piggybacking parent elapsed-time data "in an extra
SOAP segment at the end of the application request messages"
(Section 3.4) and requires communication "at a frequency that will not
flood the network".  The :class:`Network` here records every transfer's
payload size so experiments can report the communication cost of
decentralization alongside its time savings.

Two properties matter for the heavy-traffic north star:

- **Bounded memory.**  Channels keep *counters* (messages, bytes, fault
  tallies), never per-message history, so accounting cost is O(1) per
  transfer regardless of how many rounds a deployment runs.
- **Per-round deltas.**  :meth:`Network.begin_round` snapshots the
  cumulative counters; :meth:`Network.round_summary` reports only the
  traffic since the snapshot.  Without this, a second ``learn_round``'s
  summary would silently double-count the first round's messages — the
  bug that motivated this layer.

Faults are injected at the channel: a :class:`ChannelFaults` spec drops,
duplicates, or delays each transfer with configured probabilities from a
seeded RNG, so chaos experiments are deterministic and replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

import numpy as np

from repro.exceptions import CommunicationError
from repro.obs.runtime import OBS as _OBS
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class Message:
    """One batch of elapsed-time data from a parent agent to a child agent.

    ``latency`` is the simulated delivery delay (seconds) the message
    suffered in transit — zero on a healthy channel.  ``trace`` is the
    optional piggybacked :class:`~repro.obs.propagation.TraceContext`
    wire dict — the observability equivalent of the paper's "extra SOAP
    segment": it rides the data payload so the receiving agent can
    parent its spans under the sender's open span.
    """

    sender: str
    recipient: str
    column: str
    payload: np.ndarray
    latency: float = 0.0
    trace: "dict | None" = None

    @property
    def n_values(self) -> int:
        return int(np.asarray(self.payload).size)

    @property
    def n_bytes(self) -> int:
        return int(np.asarray(self.payload).nbytes)


@dataclass(frozen=True)
class ChannelFaults:
    """Per-transfer fault probabilities for a channel (seeded, replayable).

    Each :meth:`Channel.transmit` draws independently: the message is
    dropped with probability ``drop``; a surviving message is delayed by
    ``delay_seconds`` with probability ``delay``, and delivered twice
    (both copies crossing the wire) with probability ``duplicate``.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    delay_seconds: float = 0.05

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise CommunicationError(f"{name} must be in [0, 1), got {p}")
        if self.delay_seconds < 0:
            raise CommunicationError("delay_seconds must be >= 0")

    @property
    def any(self) -> bool:
        return bool(self.drop or self.duplicate or self.delay)


@dataclass
class Channel:
    """A directed link between two agents.

    Keeps O(1) counters only — no message history — so a channel's
    memory footprint is independent of traffic volume.
    """

    sender: str
    recipient: str
    faults: "ChannelFaults | None" = None
    n_sent: int = 0          # transfers attempted
    n_delivered: int = 0     # copies that arrived (duplicates count twice)
    n_dropped: int = 0
    n_duplicated: int = 0
    n_delayed: int = 0
    bytes_delivered: int = 0
    delay_seconds: float = 0.0  # total simulated in-transit delay

    def _deliver(self, msg: Message) -> Message:
        self.n_delivered += 1
        self.bytes_delivered += msg.n_bytes
        return msg

    def send(
        self, column: str, payload: np.ndarray, trace: "dict | None" = None
    ) -> Message:
        """Fault-free transfer: always delivers exactly one message."""
        self.n_sent += 1
        return self._deliver(
            Message(
                sender=self.sender,
                recipient=self.recipient,
                column=column,
                payload=np.asarray(payload, dtype=float),
                trace=trace,
            )
        )

    def transmit(
        self,
        column: str,
        payload: np.ndarray,
        rng=None,
        faults: "ChannelFaults | None" = None,
        trace: "dict | None" = None,
    ) -> list:
        """Transfer through a fault model (``faults`` overrides the
        channel's own — the network passes its current config so chaos
        can be switched on mid-deployment).

        Returns the list of delivered :class:`Message` copies — empty if
        the transfer was dropped, two entries if it was duplicated.
        """
        faults = faults if faults is not None else self.faults
        if faults is None or not faults.any:
            return [self.send(column, payload, trace=trace)]
        rng = ensure_rng(rng)
        self.n_sent += 1
        if rng.random() < faults.drop:
            self.n_dropped += 1
            return []
        msg = Message(
            sender=self.sender,
            recipient=self.recipient,
            column=column,
            payload=np.asarray(payload, dtype=float),
            trace=trace,
        )
        if rng.random() < faults.delay:
            self.n_delayed += 1
            self.delay_seconds += faults.delay_seconds
            msg = replace(msg, latency=faults.delay_seconds)
        out = [self._deliver(msg)]
        if rng.random() < faults.duplicate:
            self.n_duplicated += 1
            out.append(self._deliver(msg))
        return out

    @property
    def total_bytes(self) -> int:
        return self.bytes_delivered


# Counter names aggregated by Network totals / round deltas.
_COUNTERS = (
    "n_sent",
    "n_delivered",
    "n_dropped",
    "n_duplicated",
    "n_delayed",
    "bytes_delivered",
    "delay_seconds",
)


class Network:
    """All channels of a decentralized learning deployment.

    ``faults`` (optional) is the default fault model applied to every
    channel the network creates; ``rng`` seeds the fault draws so a
    chaos run is reproducible end to end.
    """

    def __init__(self, faults: "ChannelFaults | None" = None, rng=None) -> None:
        self._channels: dict[tuple[str, str], Channel] = {}
        self.faults = faults
        self.rng = ensure_rng(rng)
        self._round_base: "dict | None" = None

    def channel(self, sender: str, recipient: str) -> Channel:
        if sender == recipient:
            raise CommunicationError("an agent does not message itself")
        key = (sender, recipient)
        if key not in self._channels:
            self._channels[key] = Channel(
                sender=sender, recipient=recipient, faults=self.faults
            )
        return self._channels[key]

    def transmit(self, sender: str, recipient: str, column: str, payload) -> list:
        """Send through the (auto-created) channel with the network's RNG
        and its *current* fault config (so chaos toggles mid-deployment).

        When observability is enabled and a span is open, the sender's
        :class:`~repro.obs.propagation.TraceContext` is piggybacked on
        every delivered copy, so a receiving process can reattach its
        spans under the span that was open at transmit time.
        """
        trace = None
        if _OBS.enabled:
            from repro.obs.propagation import current_context

            ctx = current_context()
            if ctx is not None:
                trace = ctx.to_wire()
        return self.channel(sender, recipient).transmit(
            column, payload, self.rng, faults=self.faults, trace=trace
        )

    def __iter__(self) -> Iterator[Channel]:
        return iter(self._channels.values())

    @property
    def n_messages(self) -> int:
        return sum(c.n_delivered for c in self._channels.values())

    @property
    def total_bytes(self) -> int:
        return sum(c.bytes_delivered for c in self._channels.values())

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    def _totals(self) -> dict:
        totals = {name: 0 for name in _COUNTERS}
        totals["delay_seconds"] = 0.0
        for c in self._channels.values():
            for name in _COUNTERS:
                totals[name] += getattr(c, name)
        return totals

    def summary(self) -> dict:
        """Cumulative traffic since the network was created."""
        totals = self._totals()
        return {
            "n_channels": len(self._channels),
            "n_messages": totals["n_delivered"],
            "total_bytes": totals["bytes_delivered"],
            "n_sent": totals["n_sent"],
            "n_dropped": totals["n_dropped"],
            "n_duplicated": totals["n_duplicated"],
            "n_delayed": totals["n_delayed"],
            "delay_seconds": totals["delay_seconds"],
        }

    def begin_round(self) -> None:
        """Snapshot cumulative counters; the next round reports deltas."""
        self._round_base = self._totals()

    def round_summary(self) -> dict:
        """Traffic since the last :meth:`begin_round` (cumulative if never
        called) — the per-round cost a Fig.-5-style experiment should plot."""
        totals = self._totals()
        base = self._round_base or {name: 0 for name in _COUNTERS}
        return {
            "n_channels": len(self._channels),
            "n_messages": totals["n_delivered"] - base["n_delivered"],
            "total_bytes": totals["bytes_delivered"] - base["bytes_delivered"],
            "n_sent": totals["n_sent"] - base["n_sent"],
            "n_dropped": totals["n_dropped"] - base["n_dropped"],
            "n_duplicated": totals["n_duplicated"] - base["n_duplicated"],
            "n_delayed": totals["n_delayed"] - base["n_delayed"],
            "delay_seconds": totals["delay_seconds"] - base.get("delay_seconds", 0.0),
        }
