"""Simulated agent-to-agent messaging with payload accounting.

The paper proposes piggybacking parent elapsed-time data "in an extra
SOAP segment at the end of the application request messages"
(Section 3.4) and requires communication "at a frequency that will not
flood the network".  The :class:`Network` here records every transfer's
payload size so experiments can report the communication cost of
decentralization alongside its time savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.exceptions import SimulationError


@dataclass(frozen=True)
class Message:
    """One batch of elapsed-time data from a parent agent to a child agent."""

    sender: str
    recipient: str
    column: str
    payload: np.ndarray

    @property
    def n_values(self) -> int:
        return int(np.asarray(self.payload).size)

    @property
    def n_bytes(self) -> int:
        return int(np.asarray(self.payload).nbytes)


@dataclass
class Channel:
    """A directed link between two agents."""

    sender: str
    recipient: str
    delivered: list = field(default_factory=list)

    def send(self, column: str, payload: np.ndarray) -> Message:
        msg = Message(
            sender=self.sender,
            recipient=self.recipient,
            column=column,
            payload=np.asarray(payload, dtype=float),
        )
        self.delivered.append(msg)
        return msg

    @property
    def total_bytes(self) -> int:
        return sum(m.n_bytes for m in self.delivered)


class Network:
    """All channels of a decentralized learning round."""

    def __init__(self) -> None:
        self._channels: dict[tuple[str, str], Channel] = {}

    def channel(self, sender: str, recipient: str) -> Channel:
        if sender == recipient:
            raise SimulationError("an agent does not message itself")
        key = (sender, recipient)
        if key not in self._channels:
            self._channels[key] = Channel(sender=sender, recipient=recipient)
        return self._channels[key]

    def __iter__(self) -> Iterator[Channel]:
        return iter(self._channels.values())

    @property
    def n_messages(self) -> int:
        return sum(len(c.delivered) for c in self._channels.values())

    @property
    def total_bytes(self) -> int:
        return sum(c.total_bytes for c in self._channels.values())

    def summary(self) -> dict:
        return {
            "n_channels": len(self._channels),
            "n_messages": self.n_messages,
            "total_bytes": self.total_bytes,
        }
