"""Server-side orchestration of decentralized parameter learning.

The coordinator plays the management server of Figure 1: it knows the
KERT-BN structure (cheap to hold centrally — "far more lightweight than
storing and computing the CPDs"), wires up parent→child channels,
triggers each agent's local fit, and assembles the finished CPDs into
the network.

Timing follows Section 4.3 exactly: the *decentralized* learning time of
a round is the **maximum** of the per-agent fit times (agents run
concurrently in deployment); the *centralized* reference is their
**sum** (one management node doing everything).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.bn.cpd.base import CPD
from repro.bn.dag import DAG
from repro.bn.data import Dataset
from repro.decentralized.agent import CpdFitter, LearningAgent
from repro.decentralized.messaging import Network
from repro.exceptions import LearningError


@dataclass
class DecentralizedResult:
    """Outcome of one decentralized learning round."""

    cpds: dict
    per_agent_seconds: dict
    network_summary: dict
    response_cpd_seconds: float = 0.0

    @property
    def decentralized_seconds(self) -> float:
        """Max per-agent fit time — the concurrent wall-clock cost."""
        base = max(self.per_agent_seconds.values()) if self.per_agent_seconds else 0.0
        # The response CPD (when learned) lives on the management server
        # and overlaps the agents' work only if it is cheap; it is added
        # because the server cannot finish before its own piece is done.
        return base + self.response_cpd_seconds

    @property
    def centralized_seconds(self) -> float:
        """Sum of all fit times — the single-node reference cost."""
        return sum(self.per_agent_seconds.values()) + self.response_cpd_seconds


class Coordinator:
    """Management server for a decentralized parameter-learning round."""

    def __init__(
        self,
        dag: DAG,
        fitter: CpdFitter,
        response: "str | None" = None,
        response_fit: "Callable[[Dataset], tuple[CPD, float]] | None" = None,
    ):
        self.dag = dag.copy()
        self.response = response
        self.response_fit = response_fit
        if response is not None and response not in dag:
            raise LearningError(f"response {response!r} not in structure")
        self.network = Network()
        self.agents: dict[str, LearningAgent] = {}
        for node in dag.nodes:
            node = str(node)
            if node == response:
                continue  # the Eq.-4 CPD is knowledge-given / server-side
            parents = tuple(map(str, dag.parents(node)))
            self.agents[node] = LearningAgent(node, parents, fitter)

    # ------------------------------------------------------------------ #

    def distribute(self, data: Dataset) -> None:
        """Deliver local columns and ship parent columns over channels.

        ``data`` stands for the union of what each monitoring point
        collected this window; in deployment each agent already holds its
        own column and only the parent columns travel.
        """
        for name, agent in self.agents.items():
            agent.collect_local(np.asarray(data[name], dtype=float))
        for name, agent in self.agents.items():
            for parent in agent.parents:
                channel = self.network.channel(parent, name)
                msg = channel.send(parent, np.asarray(data[parent], dtype=float))
                agent.receive(msg)

    def learn_round(self, data: Dataset) -> DecentralizedResult:
        """One full round: distribute, fit everywhere, assemble."""
        self.distribute(data)
        cpds: dict[str, CPD] = {}
        per_agent: dict[str, float] = {}
        for name, agent in self.agents.items():
            cpds[name] = agent.learn()
            per_agent[name] = agent.last_fit_seconds
        response_secs = 0.0
        if self.response is not None:
            if self.response_fit is None:
                raise LearningError(
                    f"structure has response {self.response!r} but no "
                    "response_fit was provided"
                )
            cpd, response_secs = self.response_fit(data)
            cpds[self.response] = cpd
        return DecentralizedResult(
            cpds=cpds,
            per_agent_seconds=per_agent,
            network_summary=self.network.summary(),
            response_cpd_seconds=response_secs,
        )
