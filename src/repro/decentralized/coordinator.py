"""Server-side orchestration of decentralized parameter learning.

The coordinator plays the management server of Figure 1: it knows the
KERT-BN structure (cheap to hold centrally — "far more lightweight than
storing and computing the CPDs"), wires up parent→child channels,
triggers each agent's local fit, and assembles the finished CPDs into
the network.

Timing follows Section 4.3 exactly: the *decentralized* learning time of
a round is the **maximum** of the per-agent costs (agents run
concurrently in deployment) — where an agent's cost is its fit time
plus any delivery wait (channel delay, retry backoff); the
*centralized* reference is the **sum** of the fit times (one management
node doing everything, no network in the path).

Fault tolerance (the Section-5.1 "reporting failure is normal" stance):
``learn_round`` retries undelivered parent columns with exponential
backoff, enforces an optional per-agent fit timeout, and completes
*partial* rounds by substituting each troubled agent's last-known-good
CPD from :class:`~repro.decentralized.resilience.RoundState`.  The
result reports exactly which CPDs are fresh, stale, or failed — the
caller decides whether a degraded model is still serviceable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.bn.cpd.base import CPD
from repro.bn.dag import DAG
from repro.bn.data import Dataset
from repro.decentralized.agent import CpdFitter, LearningAgent
from repro.decentralized.messaging import ChannelFaults, Network
from repro.decentralized.resilience import (
    FAILED,
    FRESH,
    STALE,
    NodeOutcome,
    RetryPolicy,
    RoundState,
)
from repro.exceptions import LearningError, ReproError
from repro.obs.runtime import OBS as _OBS


@dataclass
class DecentralizedResult:
    """Outcome of one decentralized learning round.

    ``network_summary`` covers **this round only** (per-round deltas
    from :meth:`~repro.decentralized.messaging.Network.round_summary`);
    cumulative traffic lives on the coordinator's network.  ``fresh`` /
    ``stale`` / ``failed`` partition the nodes by how their CPD was
    obtained; ``stale`` nodes carry their last-known-good CPD and
    ``failed`` nodes have no CPD in ``cpds`` at all.
    """

    cpds: dict
    per_agent_seconds: dict
    network_summary: dict
    response_cpd_seconds: float = 0.0
    per_agent_wait_seconds: dict = field(default_factory=dict)
    outcomes: dict = field(default_factory=dict)  # node -> NodeOutcome
    round_index: int = 0

    @property
    def fresh(self) -> tuple:
        return tuple(n for n, o in self.outcomes.items() if o.status == FRESH)

    @property
    def stale(self) -> tuple:
        return tuple(n for n, o in self.outcomes.items() if o.status == STALE)

    @property
    def failed(self) -> tuple:
        return tuple(n for n, o in self.outcomes.items() if o.status == FAILED)

    @property
    def complete(self) -> bool:
        """Every node ended the round with a usable CPD (fresh or stale)."""
        return not self.failed

    @property
    def degraded(self) -> bool:
        """At least one CPD is not from this round's data."""
        return bool(self.stale or self.failed)

    @property
    def decentralized_seconds(self) -> float:
        """Max per-agent cost (fit + delivery wait) — concurrent wall clock."""
        if self.per_agent_seconds:
            base = max(
                secs + self.per_agent_wait_seconds.get(name, 0.0)
                for name, secs in self.per_agent_seconds.items()
            )
        else:
            base = 0.0
        # The response CPD (when learned) lives on the management server
        # and overlaps the agents' work only if it is cheap; it is added
        # because the server cannot finish before its own piece is done.
        return base + self.response_cpd_seconds

    @property
    def centralized_seconds(self) -> float:
        """Sum of all fit times — the single-node reference cost (no
        network waits: a central fit never messages)."""
        return sum(self.per_agent_seconds.values()) + self.response_cpd_seconds


class Coordinator:
    """Management server for decentralized parameter-learning rounds."""

    def __init__(
        self,
        dag: DAG,
        fitter: CpdFitter,
        response: "str | None" = None,
        response_fit: "Callable[[Dataset], tuple[CPD, float]] | None" = None,
        retry_policy: "RetryPolicy | None" = None,
        faults: "ChannelFaults | None" = None,
        rng=None,
        strict: bool = False,
    ):
        self.dag = dag.copy()
        self.response = response
        self.response_fit = response_fit
        if response is not None and response not in dag:
            raise LearningError(f"response {response!r} not in structure")
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.strict = bool(strict)
        self.network = Network(faults=faults, rng=rng)
        self.state = RoundState()
        self.agents: dict[str, LearningAgent] = {}
        for node in dag.nodes:
            node = str(node)
            if node == response:
                continue  # the Eq.-4 CPD is knowledge-given / server-side
            parents = tuple(map(str, dag.parents(node)))
            self.agents[node] = LearningAgent(node, parents, fitter)

    # ------------------------------------------------------------------ #

    def distribute(self, data: Dataset) -> None:
        """Deliver local columns and ship parent columns over channels.

        ``data`` stands for the union of what each monitoring point
        collected this window; in deployment each agent already holds its
        own column and only the parent columns travel.  Channel faults
        (if configured) apply here: a dropped transfer simply leaves the
        agent's column missing for :meth:`learn_round`'s retry loop.
        """
        for name, agent in self.agents.items():
            agent.begin_round()
            if name in data:
                agent.collect_local(np.asarray(data[name], dtype=float))
        for name, agent in self.agents.items():
            for parent in agent.parents:
                if parent not in data:
                    continue  # nothing to ship; surfaces as a missing column
                for msg in self.network.transmit(
                    parent, name, parent, np.asarray(data[parent], dtype=float)
                ):
                    agent.receive(msg)

    def _retry_missing(self, agent: LearningAgent, data: Dataset) -> int:
        """Re-request undelivered parent columns with backoff.

        Returns the number of delivery attempts consumed (>= 1).  Only
        columns that exist in ``data`` are resendable; a column the
        monitoring layer never produced cannot be conjured by retrying.
        """
        attempt = 1
        while not agent.ready and attempt < self.retry_policy.max_attempts:
            resendable = [
                c for c in agent.missing if c != agent.service and c in data
            ]
            if not resendable:
                break
            attempt += 1
            agent.last_wait_seconds += self.retry_policy.backoff(attempt - 1)
            for parent in resendable:
                for msg in self.network.transmit(
                    parent, agent.service, parent,
                    np.asarray(data[parent], dtype=float),
                ):
                    agent.receive(msg)
        return attempt

    def _resolve_failure(self, node: str, attempts: int, error: str) -> NodeOutcome:
        """Stale fallback if a last-known-good CPD exists, else FAILED."""
        if self.strict:
            raise LearningError(f"agent {node!r} failed round: {error}")
        if self.state.fallback(node) is not None:
            return NodeOutcome(
                node=node,
                status=STALE,
                attempts=attempts,
                age=self.state.age_of(node) + 1,
                error=error,
            )
        return NodeOutcome(node=node, status=FAILED, attempts=attempts, error=error)

    def learn_round(self, data: Dataset) -> DecentralizedResult:
        """One full round: distribute (with retries), fit, assemble.

        Never aborts on a single agent's trouble (unless ``strict``):
        a node whose parent columns stay undelivered, whose fit raises,
        or whose fit overruns ``retry_policy.fit_timeout`` falls back to
        its last-known-good CPD and is reported ``stale`` (``failed`` if
        no earlier round ever produced one).

        When observability is on, the whole round runs inside a
        ``decentralized.round`` span — open *before* distribution, so
        every channel transfer piggybacks the round's
        :class:`~repro.obs.propagation.TraceContext` and a remote
        agent's spans can reattach under this exact round.
        """
        if not _OBS.enabled:
            return self._learn_round(data)
        with _OBS.tracer.span("decentralized.round") as round_span:
            result = self._learn_round(data)
            self._record_obs(result, round_span)
        return result

    def _learn_round(self, data: Dataset) -> DecentralizedResult:
        self.network.begin_round()
        self.distribute(data)
        cpds: dict[str, CPD] = {}
        per_agent: dict[str, float] = {}
        waits: dict[str, float] = {}
        outcomes: dict[str, NodeOutcome] = {}
        for name, agent in self.agents.items():
            attempts = self._retry_missing(agent, data)
            if not agent.ready:
                outcomes[name] = self._resolve_failure(
                    name,
                    attempts,
                    f"columns {agent.missing} undelivered after "
                    f"{attempts} attempt(s)",
                )
                per_agent[name] = 0.0
            else:
                try:
                    cpd = agent.learn()
                except ReproError as exc:
                    outcomes[name] = self._resolve_failure(
                        name, attempts, f"local fit failed: {exc}"
                    )
                    per_agent[name] = 0.0
                else:
                    timeout = self.retry_policy.fit_timeout
                    if timeout is not None and agent.last_fit_seconds > timeout:
                        outcomes[name] = self._resolve_failure(
                            name,
                            attempts,
                            f"fit took {agent.last_fit_seconds:.3f}s "
                            f"(> {timeout:.3f}s timeout)",
                        )
                        per_agent[name] = 0.0
                    else:
                        outcomes[name] = NodeOutcome(
                            node=name, status=FRESH, attempts=attempts
                        )
                        self.state.record_fresh(name, cpd)
                        per_agent[name] = agent.last_fit_seconds
                        cpds[name] = cpd
            waits[name] = agent.last_wait_seconds
            if outcomes[name].status == STALE:
                cpds[name] = self.state.fallback(name)
        response_secs = 0.0
        if self.response is not None:
            if self.response_fit is None:
                raise LearningError(
                    f"structure has response {self.response!r} but no "
                    "response_fit was provided"
                )
            try:
                cpd, response_secs = self.response_fit(data)
            except ReproError as exc:
                outcomes[self.response] = self._resolve_failure(
                    self.response, 1, f"response fit failed: {exc}"
                )
                fallback = self.state.fallback(self.response)
                if fallback is not None:
                    cpds[self.response] = fallback
            else:
                outcomes[self.response] = NodeOutcome(
                    node=self.response, status=FRESH
                )
                self.state.record_fresh(self.response, cpd)
                cpds[self.response] = cpd
        round_index = self.state.rounds_completed
        self.state.close_round(
            [n for n, o in outcomes.items() if o.status == FRESH]
        )
        return DecentralizedResult(
            cpds=cpds,
            per_agent_seconds=per_agent,
            network_summary=self.network.round_summary(),
            response_cpd_seconds=response_secs,
            per_agent_wait_seconds=waits,
            outcomes=outcomes,
            round_index=round_index,
        )

    def _record_obs(self, result: DecentralizedResult, round_span) -> None:
        """Publish one round's accounting to :mod:`repro.obs`.

        The round span carries the paper's Sec.-3.4 decentralized time —
        the **max** over per-agent costs (fit + delivery wait), plus the
        server-side response CPD — while each ``agent:<node>`` child
        carries that agent's own accounted cost.  Metrics mirror the
        :class:`DecentralizedResult` partition (fresh / stale / failed)
        plus retry counts so learning-health dashboards need no access
        to the result objects themselves.
        """
        m = _OBS.metrics
        m.counter("decentralized.rounds").inc()
        m.counter("decentralized.agents.fresh").inc(len(result.fresh))
        m.counter("decentralized.agents.stale").inc(len(result.stale))
        m.counter("decentralized.agents.failed").inc(len(result.failed))
        m.counter("decentralized.retries").inc(
            sum(max(0, o.attempts - 1) for o in result.outcomes.values())
        )
        m.gauge("decentralized.last_round.seconds").set(
            result.decentralized_seconds
        )
        m.gauge("decentralized.last_round.centralized_seconds").set(
            result.centralized_seconds
        )
        fit_hist = m.histogram("decentralized.agent_fit_seconds")
        tracer = _OBS.tracer
        round_span.annotate(round_index=result.round_index)
        for name, fit_secs in result.per_agent_seconds.items():
            outcome = result.outcomes.get(name)
            status = outcome.status if outcome is not None else FRESH
            if status == FRESH:
                fit_hist.observe(fit_secs)
            tracer.record_span(
                f"agent:{name}",
                fit_secs + result.per_agent_wait_seconds.get(name, 0.0),
            ).annotate(
                status=status,
                fit_seconds=fit_secs,
                wait_seconds=result.per_agent_wait_seconds.get(name, 0.0),
            )
        if self.response is not None:
            tracer.record_span(
                "response-cpd", result.response_cpd_seconds
            ).annotate(node=self.response)
        # Accounted concurrency, not sequential wall clock: the round
        # took as long as its slowest agent (Sec. 3.4).
        round_span.override_duration(result.decentralized_seconds)
