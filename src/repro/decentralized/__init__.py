"""Decentralized parameter learning (Section 3.4).

Each CPD ``P(X_i | Φ(X_i))`` needs only the data of service *i* and its
KERT-BN parents, so it can be computed *on service i's monitoring agent*
after the parents ship their elapsed-time columns over (piggybacked on
application requests in the paper's SOAP suggestion).  The central
server keeps only the structure and the finished CPDs.

Three layers:

- :mod:`repro.decentralized.messaging` — channels with payload-size
  accounting between agents;
- :mod:`repro.decentralized.agent` / :mod:`repro.decentralized.coordinator`
  — the agent-side learning step and the server-side assembly, with the
  Section-4.3 timing accounting (decentralized time = max per-agent
  time; centralized = sum);
- :mod:`repro.decentralized.parallel` — an optional true-concurrency
  executor on :mod:`multiprocessing`, for demonstration on multi-core
  machines;
- :mod:`repro.decentralized.resilience` — retry/backoff/timeout policy
  and the last-known-good CPD store that lets a round complete
  *partially* (stale CPDs substituted, fresh/stale/failed reported)
  when channels drop messages or agents fail.
"""

from repro.decentralized.messaging import Message, Channel, ChannelFaults, Network
from repro.decentralized.agent import LearningAgent
from repro.decentralized.coordinator import Coordinator, DecentralizedResult
from repro.decentralized.parallel import parallel_parameter_learning
from repro.decentralized.piggyback import PiggybackDistributor, PiggybackResult
from repro.decentralized.resilience import (
    FAILED,
    FRESH,
    STALE,
    NodeOutcome,
    RetryPolicy,
    RoundState,
)

__all__ = [
    "Message",
    "Channel",
    "ChannelFaults",
    "Network",
    "LearningAgent",
    "Coordinator",
    "DecentralizedResult",
    "parallel_parameter_learning",
    "PiggybackDistributor",
    "PiggybackResult",
    "RetryPolicy",
    "RoundState",
    "NodeOutcome",
    "FRESH",
    "STALE",
    "FAILED",
]
