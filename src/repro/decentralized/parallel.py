"""True-concurrency decentralized learning on :mod:`multiprocessing`.

The analytic accounting in :class:`~repro.decentralized.coordinator.
Coordinator` (max of per-CPD times) matches the paper's Section 4.3
methodology and is what the Fig. 5 benchmark reports — it is robust on a
single-core machine.  This module additionally *demonstrates* the
concurrency for real: each worker process receives only its node's
columns (the data-locality property), fits, and ships the CPD back.

Worker payloads go through module-level functions (picklable); each
worker draws only ``{X_i} ∪ Φ(X_i)`` columns, mirroring what a per-
service monitoring agent would hold.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Iterable

import numpy as np

from repro.bn.dag import DAG
from repro.bn.data import Dataset
from repro.bn.learning.mle import fit_linear_gaussian
from repro.exceptions import LearningError
from repro.obs.runtime import OBS as _OBS


def _fit_one(args: tuple) -> tuple:
    """Worker: fit one linear-Gaussian CPD from its local columns."""
    variable, parents, columns = args
    local = Dataset({k: np.asarray(v) for k, v in columns.items()})
    cpd = fit_linear_gaussian(local, variable, parents)
    return variable, cpd


def parallel_parameter_learning(
    dag: DAG,
    data: Dataset,
    nodes: "Iterable[str] | None" = None,
    processes: "int | None" = None,
) -> dict:
    """Fit the CPDs of ``nodes`` concurrently, one task per node.

    Returns ``{node: LinearGaussianCPD}``.  ``processes=None`` lets the
    pool size default to the CPU count; on a single-core host this
    degrades gracefully to sequential execution with identical results
    (determinism does not depend on scheduling because each fit is a
    pure function of its columns).
    """
    node_list = [str(n) for n in (nodes if nodes is not None else dag.nodes)]
    if not node_list:
        raise LearningError("no nodes to fit — empty node list")
    if processes is not None and processes < 1:
        raise LearningError(f"processes must be >= 1, got {processes}")
    unknown = [n for n in node_list if n not in dag]
    if unknown:
        raise LearningError(f"nodes not in structure: {unknown}")
    tasks = []
    for node in node_list:
        parents = tuple(map(str, dag.parents(node)))
        columns = {node: np.asarray(data[node], dtype=float)}
        for p in parents:
            columns[p] = np.asarray(data[p], dtype=float)
        tasks.append((node, parents, columns))
    if len(tasks) == 1 or (processes is not None and processes <= 1):
        fitted = dict(_fit_one(t) for t in tasks)
    else:
        ctx = (
            mp.get_context("fork")
            if "fork" in mp.get_all_start_methods()
            else mp.get_context()
        )
        with ctx.Pool(processes=processes) as pool:
            fitted = dict(pool.map(_fit_one, tasks))
    # Workers are separate processes, so their registries are invisible
    # here; the coordinator side accounts completed fits as results land.
    if _OBS.enabled:
        _OBS.metrics.counter("decentralized.parallel.batches").inc()
        _OBS.metrics.counter("decentralized.parallel.fits").inc(len(fitted))
    return fitted
