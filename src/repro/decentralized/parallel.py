"""True-concurrency decentralized learning on :mod:`multiprocessing`.

The analytic accounting in :class:`~repro.decentralized.coordinator.
Coordinator` (max of per-CPD times) matches the paper's Section 4.3
methodology and is what the Fig. 5 benchmark reports — it is robust on a
single-core machine.  This module additionally *demonstrates* the
concurrency for real: each worker process receives only its node's
columns (the data-locality property), fits, and ships the CPD back.

Worker payloads go through module-level functions (picklable); each
worker draws only ``{X_i} ∪ Φ(X_i)`` columns, mirroring what a per-
service monitoring agent would hold.

Tracing crosses the process boundary: when :mod:`repro.obs` is enabled
the parent opens a ``decentralized.round`` span (``mode="parallel"``),
ships its :class:`~repro.obs.propagation.TraceContext` inside each
worker payload, and every worker returns a finished ``agent:<node>``
span as a wire dict alongside its CPD.  The parent adopts those spans
back under the round span, so the merged tree is indistinguishable in
shape from the Coordinator's analytic one — and the round span carries
the Sec.-3.4 accounted time, the **max** over per-agent fits.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Iterable

import numpy as np

from repro.bn.dag import DAG
from repro.bn.data import Dataset
from repro.bn.learning.mle import fit_linear_gaussian
from repro.exceptions import LearningError
from repro.obs.runtime import OBS as _OBS


def _fit_one(args: tuple) -> tuple:
    """Worker: fit one linear-Gaussian CPD from its local columns.

    Returns ``(variable, cpd, fit_seconds, span_payload)`` where
    ``span_payload`` is a :meth:`Span.to_wire`-shaped dict parented on
    the coordinator-side context (or ``None`` when tracing was off at
    dispatch time).
    """
    variable, parents, columns, ctx_wire = args
    t0 = time.perf_counter()
    local = Dataset({k: np.asarray(v) for k, v in columns.items()})
    cpd = fit_linear_gaussian(local, variable, parents)
    fit_seconds = time.perf_counter() - t0
    payload = None
    if ctx_wire is not None:
        from repro.obs.propagation import remote_span_payload

        payload = remote_span_payload(
            f"agent:{variable}",
            fit_seconds,
            ctx_wire,
            node=variable,
            fit_seconds=fit_seconds,
        )
    return variable, cpd, fit_seconds, payload


def parallel_parameter_learning(
    dag: DAG,
    data: Dataset,
    nodes: "Iterable[str] | None" = None,
    processes: "int | None" = None,
) -> dict:
    """Fit the CPDs of ``nodes`` concurrently, one task per node.

    Returns ``{node: LinearGaussianCPD}``.  ``processes=None`` lets the
    pool size default to the CPU count; on a single-core host this
    degrades gracefully to sequential execution with identical results
    (determinism does not depend on scheduling because each fit is a
    pure function of its columns).
    """
    node_list = [str(n) for n in (nodes if nodes is not None else dag.nodes)]
    if not node_list:
        raise LearningError("no nodes to fit — empty node list")
    if processes is not None and processes < 1:
        raise LearningError(f"processes must be >= 1, got {processes}")
    unknown = [n for n in node_list if n not in dag]
    if unknown:
        raise LearningError(f"nodes not in structure: {unknown}")
    if not _OBS.enabled:
        return _learn(dag, data, node_list, processes, ctx_wire=None)
    from repro.obs.propagation import current_context

    with _OBS.tracer.span("decentralized.round") as round_span:
        round_span.annotate(mode="parallel", n_nodes=len(node_list))
        ctx = current_context()
        fitted = _learn(
            dag,
            data,
            node_list,
            processes,
            ctx_wire=ctx.to_wire() if ctx is not None else None,
        )
    return fitted


def _learn(
    dag: DAG,
    data: Dataset,
    node_list: list,
    processes: "int | None",
    ctx_wire: "dict | None",
) -> dict:
    tasks = []
    for node in node_list:
        parents = tuple(map(str, dag.parents(node)))
        columns = {node: np.asarray(data[node], dtype=float)}
        for p in parents:
            columns[p] = np.asarray(data[p], dtype=float)
        tasks.append((node, parents, columns, ctx_wire))
    if len(tasks) == 1 or (processes is not None and processes <= 1):
        results = [_fit_one(t) for t in tasks]
    else:
        ctx = (
            mp.get_context("fork")
            if "fork" in mp.get_all_start_methods()
            else mp.get_context()
        )
        with ctx.Pool(processes=processes) as pool:
            results = pool.map(_fit_one, tasks)
    fitted = {variable: cpd for variable, cpd, _, _ in results}
    # Workers are separate processes, so their registries are invisible
    # here; the parent side accounts completed fits as results land and
    # adopts the wire spans the workers shipped back.
    if _OBS.enabled:
        m = _OBS.metrics
        m.counter("decentralized.parallel.batches").inc()
        m.counter("decentralized.parallel.fits").inc(len(fitted))
        fit_hist = m.histogram("decentralized.parallel.fit_seconds")
        tracer = _OBS.tracer
        max_fit = 0.0
        for _, _, fit_seconds, payload in results:
            fit_hist.observe(fit_seconds)
            max_fit = max(max_fit, fit_seconds)
            if payload is not None:
                tracer.adopt(payload)
        round_span = tracer.current
        if round_span is not None and round_span.name == "decentralized.round":
            # Accounted concurrency (Sec. 3.4): the round costs as much
            # as its slowest agent, not the sequential sum.
            round_span.override_duration(max_fit)
        m.gauge("decentralized.parallel.last_round_seconds").set(max_fit)
    return fitted
