"""Round-state tracking and retry policy for fault-tolerant learning.

Section 5.1 lists "failure in the act of data reporting" as a normal
data source, not an exception; a decentralized round therefore needs a
story for parent columns that never arrive and for agents whose local
fit errors out or overruns its budget.  This module supplies the two
pieces the :class:`~repro.decentralized.coordinator.Coordinator` uses:

- :class:`RetryPolicy` — how often to re-request an undelivered parent
  column, with exponential backoff (simulated seconds, charged to the
  agent's wait-time accounting), plus an optional per-agent fit timeout;
- :class:`RoundState` — the coordinator's last-known-good CPD store.
  When an agent cannot produce a fresh CPD this round, the round
  *degrades* instead of aborting: the stale CPD is substituted and its
  age (rounds since the last fresh fit) is reported.

Every node ends a round in exactly one of three states:

- ``FRESH``  — fit succeeded this round from this round's data;
- ``STALE``  — fit impossible/failed, last-known-good CPD substituted;
- ``FAILED`` — fit impossible/failed and no earlier CPD exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import LearningError

FRESH = "fresh"
STALE = "stale"
FAILED = "failed"


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/timeout knobs for one decentralized round.

    ``max_attempts`` counts delivery attempts per parent column
    (the initial send included); ``backoff(k)`` is the simulated wait
    before re-request ``k`` (1-based).  ``fit_timeout`` — when set — is
    the per-agent fit budget in seconds: an agent whose measured fit
    time exceeds it is treated as failed for the round (in deployment
    the server would have stopped waiting), even though the local fit
    eventually returned.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    fit_timeout: "float | None" = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise LearningError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise LearningError("backoff_base must be >= 0")
        if self.backoff_factor < 1:
            raise LearningError("backoff_factor must be >= 1")
        if self.fit_timeout is not None and not self.fit_timeout > 0:
            raise LearningError("fit_timeout must be > 0 when set")

    def backoff(self, attempt: int) -> float:
        """Simulated seconds waited before re-request ``attempt`` (1-based)."""
        return self.backoff_base * self.backoff_factor ** (attempt - 1)


@dataclass
class NodeOutcome:
    """How one node's CPD was obtained this round."""

    node: str
    status: str                 # FRESH | STALE | FAILED
    attempts: int = 1           # delivery attempts consumed
    age: int = 0                # rounds since the CPD was last fresh
    error: "str | None" = None  # why a fresh fit was not produced

    @property
    def ok(self) -> bool:
        return self.status != FAILED


class RoundState:
    """Last-known-good CPD store shared across a coordinator's rounds.

    Memory is bounded by the node count — one CPD and one integer age
    per node, never per-round history — so long-running deployments
    (the heavy-traffic north star) do not grow state round over round.
    """

    def __init__(self) -> None:
        self._good: dict = {}   # node -> last fresh CPD
        self._age: dict = {}    # node -> rounds since that CPD was fresh
        self.rounds_completed = 0

    def record_fresh(self, node: str, cpd) -> None:
        """A fit succeeded this round; it becomes the fallback for later."""
        self._good[str(node)] = cpd
        self._age[str(node)] = 0

    def fallback(self, node: str):
        """The last-known-good CPD for ``node``, or ``None`` if none exists."""
        return self._good.get(str(node))

    def age_of(self, node: str) -> int:
        """Rounds since ``node`` last produced a fresh CPD (0 = this round)."""
        return self._age.get(str(node), 0)

    def close_round(self, fresh_nodes) -> None:
        """End-of-round bookkeeping: age every CPD that was not refreshed."""
        fresh = {str(n) for n in fresh_nodes}
        for node in self._age:
            if node not in fresh:
                self._age[node] += 1
        self.rounds_completed += 1

    def snapshot(self) -> dict:
        """``{node: age}`` for every node with a stored CPD."""
        return dict(self._age)
