"""SOAP-piggyback data distribution — the paper's Section-3.4 sketch.

"User requests are sent from immediate upstream services … to a
downstream service.  These communications can be leveraged to send
elapsed time data from parents Φ(X_i) to X_i, by attaching the data in
an extra SOAP segment at the end of the application request messages."

:class:`PiggybackDistributor` replays a transaction trace: every time a
request flows along a workflow edge ``i → j``, the parent's measurements
*since the last request on that edge* ride along.  No dedicated
monitoring messages are sent at all — the cost is purely the extra bytes
on application traffic, which the class accounts per edge so the
"frequency that will not flood the network" requirement can be checked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.bn.dag import DAG
from repro.exceptions import LearningError
from repro.simulator.engine import TransactionRecord


@dataclass
class EdgeTraffic:
    """Piggyback accounting for one workflow edge."""

    parent: str
    child: str
    n_requests: int = 0
    n_values: int = 0

    @property
    def extra_bytes(self) -> int:
        # One float64 per piggybacked measurement plus a small header per
        # request that actually carried data.
        return 8 * self.n_values + 16 * min(self.n_requests, self.n_values)

    @property
    def values_per_request(self) -> float:
        return self.n_values / self.n_requests if self.n_requests else 0.0


@dataclass
class PiggybackResult:
    """Columns accumulated at each child agent plus the traffic bill."""

    columns: dict
    traffic: "dict[tuple[str, str], EdgeTraffic]" = field(default_factory=dict)

    @property
    def total_extra_bytes(self) -> int:
        return sum(t.extra_bytes for t in self.traffic.values())

    @property
    def n_dedicated_messages(self) -> int:
        """Dedicated monitoring messages used: always zero — the point."""
        return 0


class PiggybackDistributor:
    """Distribute parent columns to child agents over application traffic.

    ``structure`` is the KERT-BN service DAG (its edges are exactly the
    immediate-upstream relations, i.e. the paths application requests
    already travel).
    """

    def __init__(self, structure: DAG):
        self.structure = structure.copy()

    def replay(
        self, records: Sequence[TransactionRecord]
    ) -> PiggybackResult:
        """Replay a trace, accumulating piggybacked parent columns.

        For each transaction and each structure edge ``p → c`` whose both
        endpoints the transaction touched, the parent's elapsed-time
        measurement for that transaction is delivered to ``c``'s agent on
        the application request itself.
        """
        if not records:
            raise LearningError("no transaction records to replay")
        edges = [(str(u), str(v)) for u, v in self.structure.edges]
        received: dict[str, dict[str, list[float]]] = {}
        own: dict[str, list[float]] = {str(n): [] for n in self.structure.nodes}
        traffic = {e: EdgeTraffic(parent=e[0], child=e[1]) for e in edges}
        for record in records:
            for node in own:
                if node in record.elapsed:
                    own[node].append(record.elapsed[node])
            for p, c in edges:
                if p in record.elapsed and c in record.elapsed:
                    t = traffic[(p, c)]
                    t.n_requests += 1
                    t.n_values += 1
                    received.setdefault(c, {}).setdefault(p, []).append(
                        record.elapsed[p]
                    )

        columns: dict[str, dict[str, np.ndarray]] = {}
        for node in own:
            cols = {node: np.asarray(own[node], dtype=float)}
            for parent, values in received.get(node, {}).items():
                cols[parent] = np.asarray(values, dtype=float)
            columns[str(node)] = cols
        return PiggybackResult(columns=columns, traffic=traffic)

    def learn_from_replay(
        self, records: Sequence[TransactionRecord], fitter
    ) -> tuple[dict, PiggybackResult]:
        """Replay, then fit every node's CPD from its local piggybacked
        columns (aligned to transactions where node and all parents were
        measured together)."""
        from repro.bn.data import Dataset

        result = self.replay(records)
        cpds = {}
        for node in map(str, self.structure.nodes):
            parents = tuple(map(str, self.structure.parents(node)))
            cols = result.columns[node]
            missing = [p for p in parents if p not in cols]
            if missing:
                raise LearningError(
                    f"agent {node!r} never received columns {missing} — "
                    "no application traffic on those edges"
                )
            # Align lengths: keep the shortest common series (transactions
            # in which node and all its parents were all measured).
            n = min(len(cols[c]) for c in (node, *parents))
            local = Dataset({c: cols[c][-n:] for c in (node, *parents)})
            cpds[node] = fitter(local, node, parents)
        return cpds, result
