"""The agent-side unit of decentralized learning.

A :class:`LearningAgent` lives with one service.  It holds the service's
own elapsed-time column (collected locally by its monitoring point),
receives its KERT-BN parents' columns over the network, and — once all
parent columns have arrived — fits ``P(X_i | Φ(X_i))`` locally, timing
the fit.  Agents for root nodes (``Φ(X_i) = ∅``) need no communication
at all, exactly as Section 3.4 observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.bn.cpd.base import CPD
from repro.bn.data import Dataset
from repro.bn.learning.mle import fit_linear_gaussian, fit_tabular
from repro.decentralized.messaging import Message
from repro.exceptions import LearningError
from repro.utils.timing import timed

CpdFitter = Callable[[Dataset, str, tuple[str, ...]], CPD]


def linear_gaussian_fitter(min_variance: float = 1e-9) -> CpdFitter:
    """Continuous-model fitter (the Section-4 simulation study)."""

    def fit(data: Dataset, variable: str, parents: tuple[str, ...]) -> CPD:
        return fit_linear_gaussian(data, variable, parents, min_variance=min_variance)

    return fit


def tabular_fitter(cardinalities: dict, alpha: float = 1.0) -> CpdFitter:
    """Discrete-model fitter (the Section-5 eDiaMoND models)."""

    def fit(data: Dataset, variable: str, parents: tuple[str, ...]) -> CPD:
        return fit_tabular(
            data,
            variable,
            cardinalities[variable],
            parents,
            tuple(cardinalities[p] for p in parents),
            alpha=alpha,
        )

    return fit


@dataclass
class LearningAgent:
    """Monitoring agent extended with local CPD learning.

    Lifecycle: :meth:`begin_round` clears the previous round's columns
    (a window's data must not silently stand in for the next window's),
    then :meth:`collect_local` / :meth:`receive` fill the round's
    columns, then :meth:`learn` fits.  Re-delivery of a column already
    received this round is counted as a duplicate and the latest copy
    wins — duplicates are a normal channel fault, not an error.
    """

    service: str
    parents: tuple[str, ...]
    fitter: CpdFitter
    _columns: dict = field(default_factory=dict, repr=False)
    last_fit_seconds: float = 0.0
    last_wait_seconds: float = 0.0  # delivery delay + retry backoff, this round
    n_received: int = 0
    n_duplicates: int = 0

    def __post_init__(self) -> None:
        self.parents = tuple(self.parents)
        if self.service in self.parents:
            raise LearningError(f"{self.service!r} cannot be its own parent")

    # ------------------------------------------------------------------ #
    # Data acquisition
    # ------------------------------------------------------------------ #

    def begin_round(self) -> None:
        """Drop the previous round's columns and reset wait accounting."""
        self._columns.clear()
        self.last_wait_seconds = 0.0

    def collect_local(self, column: np.ndarray) -> None:
        """Ingest the service's own monitoring-point measurements."""
        self._columns[self.service] = np.asarray(column, dtype=float)

    def receive(self, message: Message) -> None:
        """Ingest a parent's elapsed-time column from the network."""
        if message.recipient != self.service:
            raise LearningError(
                f"agent {self.service!r} received a message for "
                f"{message.recipient!r}"
            )
        if message.column not in self.parents:
            raise LearningError(
                f"agent {self.service!r} has no parent {message.column!r}"
            )
        if message.column in self._columns:
            self.n_duplicates += 1
        self.n_received += 1
        # Parents transmit concurrently, so the round's delivery wait is
        # the slowest message, not the sum.
        self.last_wait_seconds = max(self.last_wait_seconds, message.latency)
        self._columns[message.column] = np.asarray(message.payload, dtype=float)

    @property
    def ready(self) -> bool:
        """All required columns present?"""
        return self.service in self._columns and all(
            p in self._columns for p in self.parents
        )

    @property
    def missing(self) -> tuple[str, ...]:
        need = (self.service, *self.parents)
        return tuple(c for c in need if c not in self._columns)

    # ------------------------------------------------------------------ #
    # Learning
    # ------------------------------------------------------------------ #

    def learn(self) -> CPD:
        """Fit this service's CPD from the local batch; records timing.

        This is the decentralizable unit: its input is exactly
        ``{X_i} ∪ Φ(X_i)``, nothing global.
        """
        if not self.ready:
            raise LearningError(
                f"agent {self.service!r} missing columns {self.missing}"
            )
        lengths = {c: v.size for c, v in self._columns.items()}
        if len(set(lengths.values())) != 1:
            raise LearningError(
                f"agent {self.service!r} has misaligned columns {lengths}"
            )
        local = Dataset(self._columns)
        cpd, secs = timed(self.fitter, local, self.service, self.parents)
        self.last_fit_seconds = secs
        return cpd
