"""The discrete-event simulation engine.

Each submitted request executes the workflow: an :class:`~repro.workflow.
constructs.Activity` is a job at a FIFO service queue, ``Sequence`` chains
completions, ``Parallel`` forks and AND-joins, ``Choice`` samples one
branch, ``Loop`` repeats geometrically.  Per-service *elapsed time*
(queueing wait + processing, exactly what a middleware monitoring point
measures) is accumulated per transaction, along with the end-to-end
response time — the ``(X_1..X_n, D)`` rows everything downstream learns
from.

The engine is deliberately callback-based over a single binary heap:
requests interleave correctly under queueing without threads, and a run
is deterministic given the RNG seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.simulator.service import Host, ServiceSpec, _HostState, _ServiceState
from repro.utils.rng import ensure_rng
from repro.workflow.constructs import (
    Activity,
    Choice,
    Loop,
    Parallel,
    Sequence as WfSequence,
    WorkflowNode,
)


@dataclass
class TransactionRecord:
    """Everything monitored about one end-to-end transaction."""

    request_id: int
    arrival: float
    completion: float = float("nan")
    demand: float = 1.0
    elapsed: dict = field(default_factory=dict)
    invocations: dict = field(default_factory=dict)

    @property
    def response_time(self) -> float:
        return self.completion - self.arrival


@dataclass
class _Job:
    record: TransactionRecord
    t_arrive: float
    upstream_elapsed: float
    done: Callable[[float, float], None]


class Engine:
    """Workflow-driven discrete-event simulator."""

    def __init__(
        self,
        workflow: WorkflowNode,
        services: Iterable[ServiceSpec],
        hosts: "Iterable[Host] | None" = None,
        demand_sigma: float = 0.0,
        rng=None,
        faults=None,
    ):
        workflow.validate()
        self.workflow = workflow
        self.rng = ensure_rng(rng)
        self.demand_sigma = float(demand_sigma)
        self.faults = faults  # Optional FaultSchedule (see simulator.faults)
        if self.demand_sigma < 0:
            raise SimulationError("demand_sigma must be >= 0")

        self._services: dict[str, _ServiceState] = {}
        for spec in services:
            if spec.name in self._services:
                raise SimulationError(f"duplicate service {spec.name!r}")
            self._services[spec.name] = _ServiceState(spec=spec)
        missing = set(workflow.services()) - set(self._services)
        if missing:
            raise SimulationError(f"workflow services without specs: {sorted(missing)}")

        self._hosts: dict[str, _HostState] = {}
        for host in hosts or ():
            if host.name in self._hosts:
                raise SimulationError(f"duplicate host {host.name!r}")
            self._hosts[host.name] = _HostState(host=host)
        for st in self._services.values():
            if st.spec.host not in self._hosts:
                # Auto-create contention-free hosts for unplaced services.
                self._hosts.setdefault(
                    st.spec.host, _HostState(host=Host(st.spec.host))
                )

        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._queues: dict[str, list[_Job]] = {}
        self._busy: dict[str, int] = {}
        self.now = 0.0

    # ------------------------------------------------------------------ #
    # Event plumbing
    # ------------------------------------------------------------------ #

    def _schedule(self, t: float, fn: Callable[[], None]) -> None:
        if t < self.now - 1e-12:
            raise SimulationError(f"cannot schedule into the past ({t} < {self.now})")
        heapq.heappush(self._heap, (t, next(self._seq), fn))

    def _reset(self) -> None:
        for st in self._services.values():
            st.reset()
        for hs in self._hosts.values():
            hs.reset()
        self._heap.clear()
        self._queues = {name: [] for name in self._services}
        self._busy = {name: 0 for name in self._services}
        self.now = 0.0

    # ------------------------------------------------------------------ #
    # Service semantics
    # ------------------------------------------------------------------ #

    def _arrive(self, name: str, job: _Job) -> None:
        st = self._services[name]
        if st.spec.queueing and self._busy[name] > 0:
            self._queues[name].append(job)
        else:
            self._begin(name, job)

    def _begin(self, name: str, job: _Job) -> None:
        st = self._services[name]
        hs = self._hosts[st.spec.host]
        spec = st.spec
        start = self.now
        base = float(spec.delay.sample(self.rng))
        duration = base / hs.host.speed
        if spec.demand_sensitivity:
            duration *= job.record.demand ** spec.demand_sensitivity
        if hs.host.contention:
            duration *= 1.0 + hs.host.contention * hs.n_running
        if self.faults is not None:
            duration *= self.faults.factor_at(name, start)
        if spec.upstream_coupling:
            duration += spec.upstream_coupling * job.upstream_elapsed
        finish = start + duration
        self._busy[name] += 1
        hs.n_running += 1
        st.busy_time += duration

        def complete() -> None:
            self._busy[name] -= 1
            hs.n_running -= 1
            elapsed = finish - job.t_arrive  # wait + service
            job.record.elapsed[name] = job.record.elapsed.get(name, 0.0) + elapsed
            job.record.invocations[name] = job.record.invocations.get(name, 0) + 1
            st.n_jobs += 1
            if st.spec.queueing and self._queues[name]:
                self._begin(name, self._queues[name].pop(0))
            job.done(finish, elapsed)

        self._schedule(finish, complete)

    # ------------------------------------------------------------------ #
    # Workflow semantics
    # ------------------------------------------------------------------ #

    def _exec(
        self,
        node: WorkflowNode,
        t: float,
        record: TransactionRecord,
        upstream: float,
        done: Callable[[float, float], None],
    ) -> None:
        if isinstance(node, Activity):
            job = _Job(record=record, t_arrive=t, upstream_elapsed=upstream, done=done)
            self._schedule(t, lambda: self._arrive(node.name, job))
        elif isinstance(node, WfSequence):
            steps = node.steps

            def run_step(i: int, t_i: float, up_i: float) -> None:
                if i == len(steps):
                    done(t_i, up_i)
                    return
                self._exec(
                    steps[i], t_i, record, up_i,
                    lambda ft, el: run_step(i + 1, ft, el),
                )

            run_step(0, t, upstream)
        elif isinstance(node, Parallel):
            n = len(node.branches)
            state = {"pending": n, "finish": t, "elapsed": 0.0}

            def join(ft: float, el: float) -> None:
                state["pending"] -= 1
                state["finish"] = max(state["finish"], ft)
                state["elapsed"] = max(state["elapsed"], el)
                if state["pending"] == 0:
                    done(state["finish"], state["elapsed"])

            for b in node.branches:
                self._exec(b, t, record, upstream, join)
        elif isinstance(node, Choice):
            i = int(self.rng.choice(len(node.branches), p=node.probabilities))
            self._exec(node.branches[i], t, record, upstream, done)
        elif isinstance(node, Loop):
            def iteration(t_i: float, up_i: float) -> None:
                self._exec(
                    node.body, t_i, record, up_i,
                    lambda ft, el: (
                        iteration(ft, el)
                        if self.rng.random() < node.continue_prob
                        else done(ft, el)
                    ),
                )

            iteration(t, upstream)
        else:
            raise SimulationError(f"unknown workflow node {type(node)!r}")

    # ------------------------------------------------------------------ #
    # Driving
    # ------------------------------------------------------------------ #

    def run(self, arrival_times: Sequence[float]) -> list[TransactionRecord]:
        """Simulate one transaction per arrival time; returns all records.

        The run is cold-started (empty queues); callers wanting
        steady-state behaviour should discard a warm-up prefix.
        """
        arrivals = np.asarray(list(arrival_times), dtype=float)
        if arrivals.size == 0:
            raise SimulationError("need at least one arrival")
        if np.any(arrivals < 0) or np.any(np.diff(arrivals) < 0):
            raise SimulationError("arrival times must be nonnegative and sorted")
        self._reset()
        records = [
            TransactionRecord(request_id=i, arrival=float(t))
            for i, t in enumerate(arrivals)
        ]
        if self.demand_sigma:
            demands = np.exp(
                self.rng.normal(0.0, self.demand_sigma, size=arrivals.size)
            )
            for r, d in zip(records, demands):
                r.demand = float(d)

        def make_done(record: TransactionRecord) -> Callable[[float, float], None]:
            def finish(ft: float, _el: float) -> None:
                record.completion = ft

            return finish

        for record in records:
            self._exec(
                self.workflow, record.arrival, record, 0.0, make_done(record)
            )
        while self._heap:
            t, _, fn = heapq.heappop(self._heap)
            self.now = t
            fn()
        incomplete = [r for r in records if not np.isfinite(r.completion)]
        if incomplete:  # pragma: no cover - internal consistency guard
            raise SimulationError(f"{len(incomplete)} transactions never completed")
        return records

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def service_names(self) -> tuple[str, ...]:
        return tuple(self._services)

    def utilization(self, horizon: float) -> dict[str, float]:
        """Busy-time fraction per service over ``horizon`` (post-run)."""
        if not horizon > 0:
            raise SimulationError("horizon must be > 0")
        return {n: st.busy_time / horizon for n, st in self._services.items()}
