"""Service and host descriptions.

A :class:`ServiceSpec` is the static description of one middleware
component; a :class:`Host` is the machine it runs on.  The dynamic state
(queue availability, busy counters) lives in the engine so specs can be
reused across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SimulationError
from repro.simulator.delays import DelayDistribution


@dataclass
class Host:
    """A machine hosting one or more services.

    ``contention`` scales the delay inflation per concurrently executing
    job on the same host: a job starting while ``k`` other jobs run on
    the host is slowed by ``1 + contention·k``.  This realizes the
    paper's *resource sharing* dependency source (Section 3.2) — services
    co-located on a host become statistically coupled.
    """

    name: str
    contention: float = 0.0
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.contention < 0:
            raise SimulationError(f"contention must be >= 0, got {self.contention}")
        if not self.speed > 0:
            raise SimulationError(f"speed must be > 0, got {self.speed}")


@dataclass
class ServiceSpec:
    """Static description of one service.

    Parameters
    ----------
    name:
        Unique service name — matches the workflow Activity and the
        KERT-BN node.
    delay:
        Base processing-delay distribution ("randomly generate a
        processing delay upon receiving calls" — Section 4.1).
    host:
        Host name for placement / contention.
    demand_sensitivity:
        Exponent on the per-request demand factor; nonzero values couple
        services through request size (heavy mammograms are slow at every
        hop).
    upstream_coupling:
        Coefficient on the immediate upstream service's elapsed time —
        the direct workflow dependency of Section 3.2 ("a burst in i's
        workload … may also be reflected by change in j's elapsed time").
    queueing:
        Whether the service is a FIFO single server (waiting time counts
        toward elapsed time, as middleware monitoring points would see).
    """

    name: str
    delay: DelayDistribution
    host: str = "default"
    demand_sensitivity: float = 0.0
    upstream_coupling: float = 0.0
    queueing: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise SimulationError("service name must be non-empty")
        if self.demand_sensitivity < 0:
            raise SimulationError("demand_sensitivity must be >= 0")
        if self.upstream_coupling < 0:
            raise SimulationError("upstream_coupling must be >= 0")


@dataclass
class _ServiceState:
    """Engine-private dynamic state of one service."""

    spec: ServiceSpec
    free_at: float = 0.0
    n_jobs: int = 0
    busy_time: float = 0.0

    def reset(self) -> None:
        self.free_at = 0.0
        self.n_jobs = 0
        self.busy_time = 0.0


@dataclass
class _HostState:
    """Engine-private dynamic state of one host."""

    host: Host
    n_running: int = 0

    def reset(self) -> None:
        self.n_running = 0
