"""Workload (arrival-process) generators.

The monitored transaction stream is driven by either an open Poisson
workload (requests arrive regardless of completions — users on the web)
or a closed workload (a fixed population of clients think, submit, wait
— the radiologists of the eDiaMoND scenario).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import SimulationError
from repro.utils.rng import ensure_rng


class Workload(abc.ABC):
    """Generates sorted arrival times."""

    @abc.abstractmethod
    def arrival_times(self, n: int, rng=None) -> np.ndarray:
        """Return ``n`` sorted nonnegative arrival times."""


class OpenWorkload(Workload):
    """Poisson arrivals at ``rate`` requests per second."""

    def __init__(self, rate: float):
        if not rate > 0:
            raise SimulationError(f"rate must be > 0, got {rate}")
        self.rate = float(rate)

    def arrival_times(self, n: int, rng=None) -> np.ndarray:
        if n < 1:
            raise SimulationError(f"need n >= 1, got {n}")
        rng = ensure_rng(rng)
        gaps = rng.exponential(1.0 / self.rate, size=n)
        return np.cumsum(gaps)


class FixedIntervalWorkload(Workload):
    """One request every ``interval`` seconds (deterministic probing)."""

    def __init__(self, interval: float, jitter: float = 0.0):
        if not interval > 0:
            raise SimulationError(f"interval must be > 0, got {interval}")
        if jitter < 0 or jitter >= interval:
            raise SimulationError("jitter must be in [0, interval)")
        self.interval = float(interval)
        self.jitter = float(jitter)

    def arrival_times(self, n: int, rng=None) -> np.ndarray:
        if n < 1:
            raise SimulationError(f"need n >= 1, got {n}")
        base = self.interval * np.arange(1, n + 1, dtype=float)
        if self.jitter:
            rng = ensure_rng(rng)
            base = base + rng.uniform(0.0, self.jitter, size=n)
            base.sort()
        return base


class BurstyWorkload(Workload):
    """Two-state Markov-modulated Poisson arrivals.

    Section 3.2's dependency story starts with "a burst in i's workload";
    this process produces such bursts: the arrival rate alternates between
    a ``base_rate`` phase and a ``burst_rate`` phase with exponentially
    distributed phase durations.
    """

    def __init__(
        self,
        base_rate: float,
        burst_rate: float,
        mean_base_duration: float,
        mean_burst_duration: float,
    ):
        if not 0 < base_rate < burst_rate:
            raise SimulationError("need 0 < base_rate < burst_rate")
        if not mean_base_duration > 0 or not mean_burst_duration > 0:
            raise SimulationError("phase durations must be > 0")
        self.base_rate = float(base_rate)
        self.burst_rate = float(burst_rate)
        self.mean_base_duration = float(mean_base_duration)
        self.mean_burst_duration = float(mean_burst_duration)

    def arrival_times(self, n: int, rng=None) -> np.ndarray:
        if n < 1:
            raise SimulationError(f"need n >= 1, got {n}")
        rng = ensure_rng(rng)
        times: list[float] = []
        t = 0.0
        bursting = False
        phase_end = rng.exponential(self.mean_base_duration)
        while len(times) < n:
            rate = self.burst_rate if bursting else self.base_rate
            t_next = t + rng.exponential(1.0 / rate)
            if t_next >= phase_end:
                # Phase flips; restart the draw from the boundary (the
                # exponential's memorylessness makes this exact).
                t = phase_end
                bursting = not bursting
                phase_end = t + rng.exponential(
                    self.mean_burst_duration if bursting else self.mean_base_duration
                )
                continue
            t = t_next
            times.append(t)
        return np.asarray(times)


class ClosedWorkload(Workload):
    """Fixed client population with exponential think times.

    Arrival generation needs the (unknown) response time; a configurable
    ``expected_cycle`` approximates one client's submit→response→think
    round trip.  :meth:`calibrate` refines it from a measured mean
    response time — the fixed-point iteration used by the eDiaMoND
    scenario setup.
    """

    def __init__(self, n_clients: int, think_time: float, expected_cycle: "float | None" = None):
        if n_clients < 1:
            raise SimulationError(f"need >= 1 client, got {n_clients}")
        if not think_time > 0:
            raise SimulationError(f"think_time must be > 0, got {think_time}")
        self.n_clients = int(n_clients)
        self.think_time = float(think_time)
        self.expected_cycle = float(expected_cycle) if expected_cycle else self.think_time

    def calibrate(self, mean_response_time: float) -> "ClosedWorkload":
        """Return a copy whose cycle includes the measured response time."""
        if not mean_response_time >= 0:
            raise SimulationError("mean_response_time must be >= 0")
        return ClosedWorkload(
            self.n_clients, self.think_time, self.think_time + mean_response_time
        )

    def arrival_times(self, n: int, rng=None) -> np.ndarray:
        if n < 1:
            raise SimulationError(f"need n >= 1, got {n}")
        rng = ensure_rng(rng)
        # Each client's k-th submission ≈ sum of k exponential cycles.
        per_client = int(np.ceil(n / self.n_clients))
        times = []
        for _ in range(self.n_clients):
            gaps = rng.exponential(self.expected_cycle, size=per_client)
            times.append(np.cumsum(gaps))
        merged = np.sort(np.concatenate(times))[:n]
        return merged


def calibrate_closed_workload(
    environment,
    workload: ClosedWorkload,
    n_probe: int = 150,
    iterations: int = 3,
    rng=None,
) -> ClosedWorkload:
    """Fixed-point calibration of a closed workload against an environment.

    A closed workload's inter-arrival cycle includes the response time it
    itself produces; iterate: simulate with the current cycle estimate,
    measure the mean response, fold it back in.  A few iterations settle
    for stable systems (asserted by the tests).
    """
    import dataclasses

    from repro.utils.rng import ensure_rng

    if iterations < 1:
        raise SimulationError("need >= 1 calibration iteration")
    rng = ensure_rng(rng)
    current = workload
    for _ in range(iterations):
        probe_env = dataclasses.replace(environment, workload=current)
        data = probe_env.simulate(n_probe, rng)
        mean_response = float(np.mean(data[probe_env.response]))
        current = current.calibrate(mean_response)
    return current
