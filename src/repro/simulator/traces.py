"""Turning transaction records into learning datasets.

One dataset row per monitored data point: either one row per transaction
or one aggregated row per ``T_DATA`` reporting window (the paper's "a
data point is reported" every ``T_DATA``).  Monitoring noise — the
physical source of Eq. 4's leak ``l`` — is applied here, on the
*measured* elapsed times only; the response time is measured at the
client and stays exact.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.bn.data import Dataset
from repro.exceptions import DataError
from repro.simulator.engine import TransactionRecord
from repro.utils.rng import ensure_rng


def trace_to_dataset(
    records: Sequence[TransactionRecord],
    services: Iterable[str],
    response: str = "D",
    measurement_noise: float = 0.0,
    aggregate: str = "transactions",
    t_data: "float | None" = None,
    rng=None,
) -> Dataset:
    """Convert transaction records to a ``(X_1..X_n, D)`` dataset.

    Parameters
    ----------
    records:
        Completed transactions from :meth:`Engine.run`.
    services:
        Column order for the elapsed-time columns; services a transaction
        did not touch contribute 0 (the zero-fill convention the
        measurement-mode ``f`` relies on).
    measurement_noise:
        Relative std of multiplicative Gaussian noise on elapsed times
        (monitoring imprecision, Section 3.3's leak source).
    aggregate:
        ``"transactions"`` — one row per transaction;
        ``"window"`` — one row per ``t_data`` interval holding the means
        of the transactions completing in it (the per-``T_DATA`` data
        point of Section 2).
    """
    if not records:
        raise DataError("no transaction records")
    services = [str(s) for s in services]
    if response in services:
        raise DataError(f"response column {response!r} collides with a service")
    rng = ensure_rng(rng)

    n = len(records)
    cols = {s: np.zeros(n) for s in services}
    resp = np.empty(n)
    completion = np.empty(n)
    for i, r in enumerate(records):
        for s, v in r.elapsed.items():
            if s in cols:
                cols[s][i] = v
        resp[i] = r.response_time
        completion[i] = r.completion
    if measurement_noise:
        for s in services:
            cols[s] = cols[s] * (1.0 + rng.normal(0.0, measurement_noise, size=n))
            np.clip(cols[s], 0.0, None, out=cols[s])

    if aggregate == "transactions":
        data = dict(cols)
        data[response] = resp
        return Dataset(data)
    if aggregate != "window":
        raise DataError(
            f"aggregate must be 'transactions' or 'window', got {aggregate!r}"
        )
    if t_data is None or not t_data > 0:
        raise DataError("window aggregation needs t_data > 0")
    order = np.argsort(completion)
    windows = np.floor(completion[order] / t_data).astype(int)
    unique, starts = np.unique(windows, return_index=True)
    bounds = list(starts) + [n]
    agg = {s: np.empty(len(unique)) for s in services}
    agg_resp = np.empty(len(unique))
    for w in range(len(unique)):
        idx = order[bounds[w]:bounds[w + 1]]
        for s in services:
            agg[s][w] = cols[s][idx].mean()
        agg_resp[w] = resp[idx].mean()
    data = dict(agg)
    data[response] = agg_resp
    return Dataset(data)


def inject_missing(
    data: Dataset,
    columns: Iterable[str],
    fraction: float = 1.0,
    rng=None,
) -> Dataset:
    """Mask entries with NaN — unobservable components for dComp (Sec 5.1).

    ``fraction=1.0`` blinds a column entirely (no instrumentation);
    ``fraction<1`` models intermittent reporting failures.
    """
    if not 0.0 < fraction <= 1.0:
        raise DataError(f"fraction must be in (0, 1], got {fraction}")
    rng = ensure_rng(rng)
    out = {}
    targets = set(columns)
    unknown = targets - set(data.columns)
    if unknown:
        raise DataError(f"unknown columns {sorted(unknown)}")
    for c in data.columns:
        col = np.asarray(data[c], dtype=float).copy()
        if c in targets:
            if fraction >= 1.0:
                col[:] = np.nan
            else:
                mask = rng.random(col.size) < fraction
                col[mask] = np.nan
        out[c] = col
    return Dataset(out)


def warmup_filter(
    records: Sequence[TransactionRecord], warmup: int
) -> list[TransactionRecord]:
    """Drop the first ``warmup`` transactions (cold-start bias)."""
    if warmup < 0:
        raise DataError(f"warmup must be >= 0, got {warmup}")
    if warmup >= len(records):
        raise DataError(
            f"warmup {warmup} leaves no records out of {len(records)}"
        )
    return list(records[warmup:])
