"""Random environments for the Figure 3–5 simulation studies.

"The simulated services receive and send calls among [each other] and
randomly generate a processing delay upon receiving calls.  They are
assembled together by different workflows to constitute simulated
applications."  (Section 4.1)

:func:`random_environment` draws a random workflow over ``n`` services,
random delay distributions, and random coupling/demand parameters, then
wraps them in a :class:`~repro.simulator.environment.SimulatedEnvironment`
whose arrival rate keeps utilization low (the paper's simulator had no
queueing at all; low utilization keeps ours in the same regime while
still exercising the queue code).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SimulationError
from repro.simulator.delays import LogNormal
from repro.simulator.environment import SimulatedEnvironment
from repro.simulator.service import Host, ServiceSpec
from repro.simulator.workload import OpenWorkload
from repro.utils.rng import ensure_rng
from repro.workflow.generator import random_workflow


def random_environment(
    n_services: int,
    rng=None,
    p_parallel: float = 0.35,
    arrival_rate: float = 0.3,
    services_per_host: int = 3,
    contention: float = 0.05,
    coupling_range: tuple[float, float] = (0.05, 0.30),
    median_range: tuple[float, float] = (0.05, 0.40),
    demand_sigma: float = 0.25,
    measurement_noise: float = 0.02,
) -> SimulatedEnvironment:
    """Draw one random service-oriented environment."""
    if n_services < 1:
        raise SimulationError(f"need >= 1 service, got {n_services}")
    rng = ensure_rng(rng)
    workflow = random_workflow(n_services, rng, p_parallel=p_parallel)
    names = workflow.services()

    n_hosts = max(1, int(np.ceil(n_services / services_per_host)))
    hosts = tuple(Host(f"host{h}", contention=contention) for h in range(n_hosts))
    placements = rng.integers(0, n_hosts, size=n_services)

    lo, hi = median_range
    medians = np.exp(rng.uniform(np.log(lo), np.log(hi), size=n_services))
    sigmas = rng.uniform(0.25, 0.55, size=n_services)
    couplings = rng.uniform(*coupling_range, size=n_services)
    sensitivities = rng.uniform(0.0, 1.0, size=n_services)

    services = tuple(
        ServiceSpec(
            name=name,
            delay=LogNormal(float(medians[i]), float(sigmas[i])),
            host=f"host{int(placements[i])}",
            demand_sensitivity=float(sensitivities[i]),
            upstream_coupling=float(couplings[i]),
        )
        for i, name in enumerate(names)
    )
    return SimulatedEnvironment(
        workflow=workflow,
        services=services,
        hosts=hosts,
        workload=OpenWorkload(rate=arrival_rate),
        demand_sigma=demand_sigma,
        measurement_noise=measurement_noise,
    )
