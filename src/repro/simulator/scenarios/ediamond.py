"""The eDiaMoND scenario of Figures 1 and 2.

Six Grid services serve a radiologist's mammogram retrieval:

- ``X1`` *image_list* — entry point, receives the client request;
- ``X2`` *work_list* — returns the radiologist's assigned images;
- ``X3`` *image_locator_local* / ``X4`` *image_locator_remote* —
  invoked **in parallel** on the local hospital L and remote hospital R;
- ``X5`` *ogsa_dai_local* / ``X6`` *ogsa_dai_remote* — the OGSA-DAI
  database wrappers each locator calls.

yielding the Fig. 2 KERT-BN and the Section 3.3 function
``D = X1 + X2 + max(X3 + X5, X4 + X6)``.

Hardware substitution (see DESIGN.md): the paper hosted the four
site services on four AIX machines and ``image_list``/``work_list`` on a
shared Linux server, with extra request forwarding emulating the WAN to
hospital R.  Here: one host per site service, a shared (contended)
``linux_server`` host for X1/X2, and a fixed WAN offset added to the
remote branch's delays.
"""

from __future__ import annotations

from typing import Mapping

from repro.simulator.delays import LogNormal, Scaled, Shifted
from repro.simulator.environment import SimulatedEnvironment
from repro.simulator.service import Host, ServiceSpec
from repro.simulator.workload import OpenWorkload
from repro.workflow.constructs import Activity, Parallel, Sequence

#: Service id → middleware component name (paper, Fig. 1/2).
EDIAMOND_ALIASES: dict[str, str] = {
    "X1": "image_list",
    "X2": "work_list",
    "X3": "image_locator_local",
    "X4": "image_locator_remote",
    "X5": "ogsa_dai_local",
    "X6": "ogsa_dai_remote",
}


def ediamond_workflow() -> Sequence:
    """The Fig. 1 invocation structure."""
    return Sequence(
        [
            Activity("X1"),
            Activity("X2"),
            Parallel(
                [
                    Sequence([Activity("X3"), Activity("X5")]),
                    Sequence([Activity("X4"), Activity("X6")]),
                ]
            ),
        ]
    )


def ediamond_scenario(
    arrival_rate: float = 0.4,
    wan_delay: float = 0.25,
    measurement_noise: float = 0.02,
    demand_sigma: float = 0.3,
    contention: float = 0.15,
    service_speedups: "Mapping[str, float] | None" = None,
) -> SimulatedEnvironment:
    """Build the simulated eDiaMoND environment.

    Parameters mirror the physical levers of the test-bed: ``wan_delay``
    is the emulated hop to the remote hospital, ``demand_sigma`` the
    mammogram-size variability that correlates all services of one
    transaction, ``contention`` the slowdown on the shared Linux server.
    ``service_speedups`` applies local resource actions: ``{"X4": 0.9}``
    scales X4's delay distribution to 90 % — the Section-5.2 pAccel
    experiment's physical change.
    """
    workflow = ediamond_workflow()
    hosts = (
        Host("linux_server", contention=contention),
        Host("aix_loc_l"),
        Host("aix_dai_l"),
        Host("aix_loc_r"),
        Host("aix_dai_r"),
    )
    services = (
        ServiceSpec("X1", LogNormal(0.15, 0.35), host="linux_server",
                    demand_sensitivity=0.5),
        ServiceSpec("X2", LogNormal(0.10, 0.30), host="linux_server",
                    upstream_coupling=0.15),
        ServiceSpec("X3", LogNormal(0.12, 0.40), host="aix_loc_l",
                    demand_sensitivity=0.8, upstream_coupling=0.10),
        ServiceSpec("X4", Shifted(LogNormal(0.12, 0.40), wan_delay),
                    host="aix_loc_r", demand_sensitivity=0.8,
                    upstream_coupling=0.10),
        ServiceSpec("X5", LogNormal(0.40, 0.45), host="aix_dai_l",
                    demand_sensitivity=1.0, upstream_coupling=0.20),
        ServiceSpec("X6", Shifted(LogNormal(0.40, 0.45), wan_delay),
                    host="aix_dai_r", demand_sensitivity=1.0,
                    upstream_coupling=0.20),
    )
    if service_speedups:
        unknown = set(service_speedups) - {s.name for s in services}
        if unknown:
            raise ValueError(f"service_speedups for unknown services {sorted(unknown)}")
        services = tuple(
            ServiceSpec(
                s.name,
                Scaled(s.delay, service_speedups[s.name])
                if s.name in service_speedups
                else s.delay,
                host=s.host,
                demand_sensitivity=s.demand_sensitivity,
                upstream_coupling=s.upstream_coupling,
                queueing=s.queueing,
            )
            for s in services
        )
    return SimulatedEnvironment(
        workflow=workflow,
        services=services,
        hosts=hosts,
        workload=OpenWorkload(rate=arrival_rate),
        demand_sigma=demand_sigma,
        measurement_noise=measurement_noise,
        resource_groups={"R_linux": ("X1", "X2")},
    )
