"""Canned environments: the eDiaMoND test-bed and random simulation envs."""

from repro.simulator.scenarios.ediamond import ediamond_scenario, EDIAMOND_ALIASES
from repro.simulator.scenarios.random_env import random_environment

__all__ = ["ediamond_scenario", "EDIAMOND_ALIASES", "random_environment"]
