"""Canned environments: the eDiaMoND test-bed and random simulation envs."""

from repro.simulator.scenarios.ediamond import EDIAMOND_ALIASES, ediamond_scenario
from repro.simulator.scenarios.random_env import random_environment

__all__ = ["EDIAMOND_ALIASES", "ediamond_scenario", "random_environment"]
