"""Fault injection for the simulator.

Autonomic managers exist because environments misbehave; the evaluation
of any self-managing model should include faulty regimes.  A
:class:`FaultSchedule` declares time-boxed degradations — a service slows
by a factor during an outage window — and the engine consults it when a
job begins service.  Combined with the monitoring layer's
``reporting_loss`` and :func:`repro.simulator.traces.inject_missing`,
this covers the three missing/again-degraded data sources Section 5.1
lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.exceptions import SimulationError


@dataclass(frozen=True)
class Degradation:
    """One fault window: ``service`` runs ``factor``× slower in [start, end)."""

    service: str
    start: float
    end: float
    factor: float

    def __post_init__(self) -> None:
        if not self.start < self.end:
            raise SimulationError(
                f"degradation window [{self.start}, {self.end}) is empty"
            )
        if not self.factor > 0:
            raise SimulationError(f"factor must be > 0, got {self.factor}")

    def active_at(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass
class FaultSchedule:
    """A set of degradations, queryable by (service, time)."""

    degradations: tuple = ()
    _by_service: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.degradations = tuple(self.degradations)
        for d in self.degradations:
            if not isinstance(d, Degradation):
                raise SimulationError(f"expected Degradation, got {type(d)!r}")
            self._by_service.setdefault(d.service, []).append(d)

    def active(self, service: str, t: float) -> tuple:
        """The degradations of ``service`` active at time ``t``.

        Window semantics are half-open: a degradation is active at
        ``t == start`` and inactive at ``t == end``, so back-to-back
        windows ``[a, b)`` + ``[b, c)`` never double-apply at ``b``.
        """
        return tuple(
            d for d in self._by_service.get(service, ()) if d.active_at(t)
        )

    def factor_at(self, service: str, t: float) -> float:
        """Combined slowdown factor for ``service`` at simulation time ``t``.

        Overlapping windows multiply (two concurrent faults compound).
        """
        factor = 1.0
        for d in self.active(service, t):
            factor *= d.factor
        return factor

    @property
    def services(self) -> tuple[str, ...]:
        return tuple(self._by_service)

    @classmethod
    def outage(
        cls, service: str, start: float, duration: float, factor: float = 5.0
    ) -> "FaultSchedule":
        """Convenience single-window schedule."""
        return cls((Degradation(service, start, start + duration, factor),))

    def merged_with(self, other: "FaultSchedule") -> "FaultSchedule":
        return FaultSchedule(self.degradations + other.degradations)


def degradation_windows(
    schedule: FaultSchedule, services: Iterable[str]
) -> dict[str, list[tuple[float, float]]]:
    """Per-service fault windows (for plotting / assertions in tests)."""
    out: dict[str, list[tuple[float, float]]] = {str(s): [] for s in services}
    for d in schedule.degradations:
        if d.service in out:
            out[d.service].append((d.start, d.end))
    return out
