"""A fully assembled simulated service-oriented environment.

:class:`SimulatedEnvironment` ties together workflow, services, hosts and
workload, and exposes the two operations every experiment needs:

- :meth:`simulate` — run transactions and return a learning dataset;
- :meth:`train_test` — independent training and testing datasets (the
  paper refreshes both per repetition).

It also exposes the environment's *domain knowledge* — the response-time
function ``f`` and the KERT-BN structure — because that is precisely
what the paper assumes is "readily available" to the modeler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.bn.dag import DAG
from repro.bn.data import Dataset
from repro.exceptions import SimulationError
from repro.simulator.engine import Engine, TransactionRecord
from repro.simulator.faults import FaultSchedule
from repro.simulator.service import Host, ServiceSpec
from repro.simulator.traces import trace_to_dataset, warmup_filter
from repro.simulator.workload import OpenWorkload, Workload
from repro.utils.rng import ensure_rng
from repro.workflow.constructs import WorkflowNode
from repro.workflow.response_time import ResponseTimeFunction, response_time_function
from repro.workflow.structure import kert_bn_structure


@dataclass
class SimulatedEnvironment:
    """Workflow + services + hosts + workload, ready to generate data."""

    workflow: WorkflowNode
    services: tuple[ServiceSpec, ...]
    hosts: tuple[Host, ...] = ()
    workload: Workload = field(default_factory=lambda: OpenWorkload(rate=0.5))
    response: str = "D"
    demand_sigma: float = 0.25
    measurement_noise: float = 0.02
    warmup: int = 20
    resource_groups: "Mapping[str, tuple[str, ...]] | None" = None
    faults: "FaultSchedule | None" = None

    def __post_init__(self) -> None:
        self.services = tuple(self.services)
        self.hosts = tuple(self.hosts)
        self.workflow.validate()
        spec_names = {s.name for s in self.services}
        wf_names = set(self.workflow.services())
        if spec_names != wf_names:
            raise SimulationError(
                f"service specs {sorted(spec_names)} do not match workflow "
                f"services {sorted(wf_names)}"
            )

    # ------------------------------------------------------------------ #
    # Domain knowledge (what the modeler is given for free)
    # ------------------------------------------------------------------ #

    @property
    def service_names(self) -> tuple[str, ...]:
        return self.workflow.services()

    def response_time_function(self) -> ResponseTimeFunction:
        """The Eq.-4 deterministic ``f`` derived from the workflow."""
        return response_time_function(self.workflow)

    def knowledge_structure(self, include_resources: bool = False) -> DAG:
        """The KERT-BN DAG derived from workflow (+ resource sharing)."""
        return kert_bn_structure(
            self.workflow,
            response=self.response,
            resource_groups=self.resource_groups if include_resources else None,
        )

    # ------------------------------------------------------------------ #
    # Resource actions
    # ------------------------------------------------------------------ #

    def scale_service(self, service: str, factor: float) -> None:
        """Scale one service's delay distribution in place.

        ``factor < 1`` accelerates (the simulated equivalent of a
        resource-allocation action), ``factor > 1`` degrades (a fault /
        load injection).  This is the single mutation point both the
        autonomic manager's execute step and test harnesses go through.
        """
        from repro.simulator.delays import Scaled

        if factor <= 0:
            raise SimulationError(f"scale factor must be > 0, got {factor}")
        new_specs = []
        found = False
        for spec in self.services:
            if spec.name == service:
                found = True
                new_specs.append(
                    ServiceSpec(
                        spec.name,
                        Scaled(spec.delay, factor),
                        host=spec.host,
                        demand_sensitivity=spec.demand_sensitivity,
                        upstream_coupling=spec.upstream_coupling,
                        queueing=spec.queueing,
                    )
                )
            else:
                new_specs.append(spec)
        if not found:
            raise SimulationError(f"unknown service {service!r}")
        self.services = tuple(new_specs)

    # ------------------------------------------------------------------ #
    # Data generation
    # ------------------------------------------------------------------ #

    def run_transactions(self, n: int, rng=None) -> list[TransactionRecord]:
        """Run ``warmup + n`` transactions, return the last ``n``."""
        rng = ensure_rng(rng)
        total = n + self.warmup
        engine = Engine(
            self.workflow,
            self.services,
            self.hosts,
            demand_sigma=self.demand_sigma,
            rng=rng,
            faults=self.faults,
        )
        arrivals = self.workload.arrival_times(total, rng)
        records = engine.run(arrivals)
        return warmup_filter(records, self.warmup) if self.warmup else records

    def simulate(
        self,
        n_points: int,
        rng=None,
        aggregate: str = "transactions",
        t_data: "float | None" = None,
    ) -> Dataset:
        """Generate a dataset of ``n_points`` monitored data points."""
        rng = ensure_rng(rng)
        if aggregate == "transactions":
            records = self.run_transactions(n_points, rng)
            return trace_to_dataset(
                records,
                self.service_names,
                response=self.response,
                measurement_noise=self.measurement_noise,
                rng=rng,
            )
        # Window aggregation: run enough transactions to fill the windows.
        if t_data is None:
            raise SimulationError("window aggregation needs t_data")
        rate = getattr(self.workload, "rate", None)
        per_window = max(int((rate or 1.0) * t_data), 1)
        records = self.run_transactions(n_points * per_window + per_window, rng)
        data = trace_to_dataset(
            records,
            self.service_names,
            response=self.response,
            measurement_noise=self.measurement_noise,
            aggregate="window",
            t_data=t_data,
            rng=rng,
        )
        return data.head(n_points) if data.n_rows >= n_points else data

    def train_test(
        self, n_train: int, n_test: int, rng=None
    ) -> tuple[Dataset, Dataset]:
        """Fresh, independent training and testing datasets."""
        rng = ensure_rng(rng)
        data = self.simulate(n_train + n_test, rng)
        return data.split(n_train)

    def simulate_via_agents(
        self,
        n_points: int,
        rng=None,
        t_data: float = 10.0,
        reporting_loss: float = 0.0,
        require_complete: bool = False,
    ) -> Dataset:
        """Generate data through the full monitoring pipeline of Fig. 1.

        Unlike :meth:`simulate` (which reads the engine's records
        directly), this routes every measurement through a per-host
        :class:`~repro.simulator.monitoring.MonitoringAgent` (noise,
        batching, optional reporting loss) and assembles rows at the
        :class:`~repro.simulator.monitoring.ManagementServer`.  With
        ``reporting_loss > 0`` the returned dataset contains NaNs —
        dComp's and EM's raw material.
        """
        from repro.simulator.monitoring import ManagementServer, MonitoringAgent

        rng = ensure_rng(rng)
        records = self.run_transactions(n_points, rng)
        by_host: dict[str, list[str]] = {}
        for spec in self.services:
            by_host.setdefault(spec.host, []).append(spec.name)
        agents = [
            MonitoringAgent(
                host=host,
                services=tuple(names),
                t_data=t_data,
                measurement_noise=self.measurement_noise,
                reporting_loss=reporting_loss,
            )
            for host, names in by_host.items()
        ]
        server = ManagementServer(self.service_names, response=self.response)
        for agent in agents:
            agent.observe(records, rng)
            server.collect(agent.report())
        server.collect_responses(records)
        return server.assemble(require_complete=require_complete)
