"""Monitoring infrastructure: points, agents, management server.

Mirrors Section 2 / Figure 1: monitoring points instrument middleware
components and measure elapsed time; a monitoring agent per machine
listens to its services' points, batches measurements, and reports them
to the management server every ``T_DATA``; the server assembles complete
``(X, D)`` rows for model construction.

The same agent objects are reused by :mod:`repro.decentralized`, where
they additionally *learn* their services' CPDs locally instead of just
shipping raw data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.bn.data import Dataset
from repro.exceptions import SimulationError
from repro.obs.runtime import OBS as _OBS
from repro.simulator.engine import TransactionRecord
from repro.utils.rng import ensure_rng


@dataclass
class Measurement:
    """One monitoring-point reading."""

    request_id: int
    service: str
    elapsed: float
    completion: float


@dataclass
class MonitoringAgent:
    """Per-machine agent: listens to monitoring points, batches, reports.

    ``reporting_loss`` drops each measurement with the given probability
    — "failure in the act of data reporting", one of Section 5.1's three
    sources of missing data.
    """

    host: str
    services: tuple[str, ...]
    t_data: float = 10.0
    measurement_noise: float = 0.0
    reporting_loss: float = 0.0
    _buffer: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self.services = tuple(self.services)
        if not self.services:
            raise SimulationError(f"agent on {self.host!r} monitors no services")
        if not self.t_data > 0:
            raise SimulationError("t_data must be > 0")
        if self.measurement_noise < 0:
            raise SimulationError(
                f"measurement_noise must be >= 0, got {self.measurement_noise}"
            )
        if not 0.0 <= self.reporting_loss < 1.0:
            raise SimulationError("reporting_loss must be in [0, 1)")

    def observe(self, records: Sequence[TransactionRecord], rng=None) -> None:
        """Ingest the monitoring-point readings for this agent's services."""
        rng = ensure_rng(rng)
        dropped = 0
        for r in records:
            for s in self.services:
                if s not in r.elapsed:
                    continue
                if self.reporting_loss and rng.random() < self.reporting_loss:
                    dropped += 1
                    continue
                value = r.elapsed[s]
                if self.measurement_noise:
                    value *= 1.0 + rng.normal(0.0, self.measurement_noise)
                    value = max(value, 0.0)
                self._buffer.append(
                    Measurement(r.request_id, s, float(value), r.completion)
                )
        if _OBS.enabled and dropped:
            _OBS.metrics.counter("monitoring.reporting_losses").inc(dropped)

    def report(self) -> list[Measurement]:
        """Flush the batch (one report per ``t_data`` in wall terms)."""
        out, self._buffer = self._buffer, []
        if _OBS.enabled:
            _OBS.metrics.counter("monitoring.reports").inc()
            _OBS.metrics.counter("monitoring.measurements").inc(len(out))
        return out

    @property
    def pending(self) -> int:
        return len(self._buffer)


class ManagementServer:
    """Central collector assembling per-transaction rows from agent reports."""

    def __init__(self, services: Iterable[str], response: str = "D"):
        self.services = tuple(str(s) for s in services)
        self.response = str(response)
        if self.response in self.services:
            raise SimulationError("response name collides with a service")
        self._rows: dict[int, dict[str, float]] = {}
        self._responses: dict[int, float] = {}

    def collect(self, measurements: Iterable[Measurement]) -> None:
        for m in measurements:
            if m.service not in self.services:
                raise SimulationError(f"report for unknown service {m.service!r}")
            self._rows.setdefault(m.request_id, {})[m.service] = m.elapsed

    def collect_responses(self, records: Sequence[TransactionRecord]) -> None:
        """Client-side end-to-end response times (always observable)."""
        for r in records:
            self._responses[r.request_id] = r.response_time

    def assemble(self, require_complete: bool = False) -> Dataset:
        """Build the training dataset.

        With ``require_complete=False`` (default) transactions missing a
        service's report get ``NaN`` there — dComp's raw material; with
        ``True`` incomplete transactions are dropped.
        """
        ids = sorted(self._responses)
        if not ids:
            raise SimulationError("no responses collected")
        cols: dict[str, list[float]] = {s: [] for s in self.services}
        resp: list[float] = []
        kept = 0
        for rid in ids:
            row = self._rows.get(rid, {})
            if require_complete and len(row) < len(self.services):
                continue
            for s in self.services:
                cols[s].append(row.get(s, np.nan))
            resp.append(self._responses[rid])
            kept += 1
        if kept == 0:
            raise SimulationError("no complete transactions to assemble")
        if _OBS.enabled:
            _OBS.metrics.counter("monitoring.assembled_rows").inc(kept)
            _OBS.metrics.counter("monitoring.dropped_rows").inc(len(ids) - kept)
        data = {s: np.asarray(v) for s, v in cols.items()}
        data[self.response] = np.asarray(resp)
        return Dataset(data)

    def reset(self) -> None:
        self._rows.clear()
        self._responses.clear()
