"""Service processing-delay distributions.

Real middleware elapsed times are positive and right-skewed; the default
scenarios use :class:`LogNormal` and :class:`Gamma` with an optional
:class:`Shifted` floor for fixed protocol overhead (marshalling, network
round trip).
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.exceptions import SimulationError


class DelayDistribution(abc.ABC):
    """A positive random processing delay."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: "int | None" = None):
        """Draw one delay (or ``size`` delays)."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected delay (used for utilization sanity checks)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(mean={self.mean:.4g})"


class Exponential(DelayDistribution):
    """Memoryless delay with the given mean."""

    def __init__(self, mean: float):
        if not mean > 0:
            raise SimulationError(f"mean must be > 0, got {mean}")
        self._mean = float(mean)

    def sample(self, rng, size=None):
        return rng.exponential(self._mean, size=size)

    @property
    def mean(self) -> float:
        return self._mean


class LogNormal(DelayDistribution):
    """Right-skewed delay; parameterized by median and log-space sigma."""

    def __init__(self, median: float, sigma: float = 0.5):
        if not median > 0:
            raise SimulationError(f"median must be > 0, got {median}")
        if not sigma >= 0:
            raise SimulationError(f"sigma must be >= 0, got {sigma}")
        self.median = float(median)
        self.sigma = float(sigma)

    def sample(self, rng, size=None):
        return self.median * np.exp(rng.normal(0.0, self.sigma, size=size))

    @property
    def mean(self) -> float:
        return self.median * math.exp(0.5 * self.sigma**2)


class Gamma(DelayDistribution):
    """Gamma(shape, scale) delay."""

    def __init__(self, shape: float, scale: float):
        if not shape > 0 or not scale > 0:
            raise SimulationError("shape and scale must be > 0")
        self.shape = float(shape)
        self.scale = float(scale)

    def sample(self, rng, size=None):
        return rng.gamma(self.shape, self.scale, size=size)

    @property
    def mean(self) -> float:
        return self.shape * self.scale


class Uniform(DelayDistribution):
    """Uniform delay on ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if not 0 <= low < high:
            raise SimulationError(f"need 0 <= low < high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng, size=None):
        return rng.uniform(self.low, self.high, size=size)

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)


class Deterministic(DelayDistribution):
    """Constant delay (useful in tests and for WAN propagation floors)."""

    def __init__(self, value: float):
        if not value >= 0:
            raise SimulationError(f"value must be >= 0, got {value}")
        self.value = float(value)

    def sample(self, rng, size=None):
        if size is None:
            return self.value
        return np.full(size, self.value)

    @property
    def mean(self) -> float:
        return self.value


class Scaled(DelayDistribution):
    """``factor · base`` — a resource action's effect on a service.

    pAccel's scenario "accelerates" a service by scaling its delay
    distribution (e.g. ``factor=0.9`` after a local resource allocation,
    Section 5.2).
    """

    def __init__(self, base: DelayDistribution, factor: float):
        if not factor > 0:
            raise SimulationError(f"factor must be > 0, got {factor}")
        self.base = base
        self.factor = float(factor)

    def sample(self, rng, size=None):
        return self.factor * self.base.sample(rng, size=size)

    @property
    def mean(self) -> float:
        return self.factor * self.base.mean


class Shifted(DelayDistribution):
    """``offset + base`` — a fixed floor under a random component.

    Models fixed overhead (e.g. the emulated WAN hop to the "remote"
    hospital in the eDiaMoND scenario) plus variable processing.
    """

    def __init__(self, base: DelayDistribution, offset: float):
        if not offset >= 0:
            raise SimulationError(f"offset must be >= 0, got {offset}")
        self.base = base
        self.offset = float(offset)

    def sample(self, rng, size=None):
        return self.offset + self.base.sample(rng, size=size)

    @property
    def mean(self) -> float:
        return self.offset + self.base.mean
