"""Service processing-delay distributions.

Real middleware elapsed times are positive and right-skewed; the default
scenarios use :class:`LogNormal` and :class:`Gamma` with an optional
:class:`Shifted` floor for fixed protocol overhead (marshalling, network
round trip).

The scenario corpus adds two *queueing-theoretic* response-time models
whose delays depend on offered utilization (per Sutton & Jordan's
Bayesian inference for queueing networks): :class:`MMk` draws from the
exact M/M/k sojourn-time distribution (Erlang-C waiting probability,
exponential conditional wait) and :class:`GG1` from a G/G/1
approximation whose mean waiting time is Kingman's formula.  Both model
the *queue's own* waiting, so services using them should run with
``queueing=False`` in their :class:`~repro.simulator.service.ServiceSpec`
— the engine's FIFO queue would otherwise double-count the wait.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.exceptions import SimulationError


class DelayDistribution(abc.ABC):
    """A positive random processing delay."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: "int | None" = None):
        """Draw one delay (or ``size`` delays)."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected delay (used for utilization sanity checks)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(mean={self.mean:.4g})"


class Exponential(DelayDistribution):
    """Memoryless delay with the given mean."""

    def __init__(self, mean: float):
        if not mean > 0:
            raise SimulationError(f"mean must be > 0, got {mean}")
        self._mean = float(mean)

    def sample(self, rng, size=None):
        return rng.exponential(self._mean, size=size)

    @property
    def mean(self) -> float:
        return self._mean


class LogNormal(DelayDistribution):
    """Right-skewed delay; parameterized by median and log-space sigma."""

    def __init__(self, median: float, sigma: float = 0.5):
        if not median > 0:
            raise SimulationError(f"median must be > 0, got {median}")
        if not sigma >= 0:
            raise SimulationError(f"sigma must be >= 0, got {sigma}")
        self.median = float(median)
        self.sigma = float(sigma)

    def sample(self, rng, size=None):
        return self.median * np.exp(rng.normal(0.0, self.sigma, size=size))

    @property
    def mean(self) -> float:
        return self.median * math.exp(0.5 * self.sigma**2)


class Gamma(DelayDistribution):
    """Gamma(shape, scale) delay."""

    def __init__(self, shape: float, scale: float):
        if not shape > 0 or not scale > 0:
            raise SimulationError("shape and scale must be > 0")
        self.shape = float(shape)
        self.scale = float(scale)

    def sample(self, rng, size=None):
        return rng.gamma(self.shape, self.scale, size=size)

    @property
    def mean(self) -> float:
        return self.shape * self.scale


class Uniform(DelayDistribution):
    """Uniform delay on ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if not 0 <= low < high:
            raise SimulationError(f"need 0 <= low < high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng, size=None):
        return rng.uniform(self.low, self.high, size=size)

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)


class Deterministic(DelayDistribution):
    """Constant delay (useful in tests and for WAN propagation floors)."""

    def __init__(self, value: float):
        if not value >= 0:
            raise SimulationError(f"value must be >= 0, got {value}")
        self.value = float(value)

    def sample(self, rng, size=None):
        if size is None:
            return self.value
        return np.full(size, self.value)

    @property
    def mean(self) -> float:
        return self.value


def erlang_c(servers: int, utilization: float) -> float:
    """Erlang-C probability that an M/M/k arrival must wait.

    Computed through the numerically stable Erlang-B recursion
    ``B(0) = 1, B(i) = a·B(i-1) / (i + a·B(i-1))`` with offered load
    ``a = k·ρ``, then ``C = B(k) / (1 - ρ·(1 - B(k)))``.
    """
    if servers < 1:
        raise SimulationError(f"servers must be >= 1, got {servers}")
    if not 0.0 < utilization < 1.0:
        raise SimulationError(
            f"utilization must be in (0, 1), got {utilization}"
        )
    a = servers * utilization
    b = 1.0
    for i in range(1, servers + 1):
        b = a * b / (i + a * b)
    return b / (1.0 - utilization * (1.0 - b))


def kingman_waiting_time(
    service_mean: float,
    utilization: float,
    scv_arrival: float = 1.0,
    scv_service: float = 1.0,
) -> float:
    """Kingman's G/G/1 mean waiting-time approximation.

    ``W_q ≈ ρ/(1-ρ) · (c_a² + c_s²)/2 · E[S]`` with the squared
    coefficients of variation of interarrival and service times.
    """
    if not service_mean > 0:
        raise SimulationError(f"service_mean must be > 0, got {service_mean}")
    if not 0.0 < utilization < 1.0:
        raise SimulationError(
            f"utilization must be in (0, 1), got {utilization}"
        )
    if scv_arrival < 0 or scv_service < 0:
        raise SimulationError("squared CVs must be >= 0")
    return (
        utilization
        / (1.0 - utilization)
        * (scv_arrival + scv_service)
        / 2.0
        * service_mean
    )


class MMk(DelayDistribution):
    """Exact M/M/k response (sojourn) time at a given utilization.

    An arrival waits with the Erlang-C probability ``C(k, ρ)``; the
    conditional wait is exponential with rate ``kμ(1-ρ)``; service is
    exponential with mean ``1/μ``.  The mean response time is the
    closed form ``1/μ + C(k, ρ) / (kμ(1-ρ))``, so utilization sweeps
    reproduce textbook hockey-stick response curves.
    """

    def __init__(self, service_mean: float, utilization: float, servers: int = 1):
        if not service_mean > 0:
            raise SimulationError(
                f"service_mean must be > 0, got {service_mean}"
            )
        self.service_mean = float(service_mean)
        self.utilization = float(utilization)
        self.servers = int(servers)
        # Validates utilization/servers as a side effect.
        self.p_wait = erlang_c(self.servers, self.utilization)
        mu = 1.0 / self.service_mean
        self.conditional_wait_mean = 1.0 / (
            self.servers * mu * (1.0 - self.utilization)
        )

    @property
    def arrival_rate(self) -> float:
        """The offered λ implied by ``ρ = λ / (k·μ)``."""
        return self.utilization * self.servers / self.service_mean

    def sample(self, rng, size=None):
        service = rng.exponential(self.service_mean, size=size)
        wait = rng.exponential(self.conditional_wait_mean, size=size)
        queued = rng.random(size=size) < self.p_wait
        out = service + np.where(queued, wait, 0.0)
        return float(out) if size is None else out

    @property
    def mean(self) -> float:
        return self.service_mean + self.p_wait * self.conditional_wait_mean


class GG1(DelayDistribution):
    """Approximate G/G/1 response time at a given utilization.

    Service times are Gamma with the requested mean and squared CV;
    waiting is zero with probability ``1-ρ`` and exponential with mean
    ``W_q/ρ`` otherwise, so the expected wait equals Kingman's
    approximation and the mean response time is ``E[S] + W_q``.
    """

    def __init__(
        self,
        service_mean: float,
        utilization: float,
        scv_arrival: float = 1.0,
        scv_service: float = 1.0,
    ):
        self.service_mean = float(service_mean)
        self.utilization = float(utilization)
        self.scv_arrival = float(scv_arrival)
        self.scv_service = float(scv_service)
        # Validates every parameter as a side effect.
        self.wait_mean = kingman_waiting_time(
            self.service_mean,
            self.utilization,
            self.scv_arrival,
            self.scv_service,
        )

    def _sample_service(self, rng, size):
        if self.scv_service == 0.0:
            if size is None:
                return self.service_mean
            return np.full(size, self.service_mean)
        shape = 1.0 / self.scv_service
        return rng.gamma(shape, self.service_mean / shape, size=size)

    def sample(self, rng, size=None):
        service = self._sample_service(rng, size)
        queued = rng.random(size=size) < self.utilization
        if self.wait_mean > 0.0:
            wait = rng.exponential(self.wait_mean / self.utilization, size=size)
        else:
            wait = np.zeros(() if size is None else size)
        out = service + np.where(queued, wait, 0.0)
        return float(out) if size is None else out

    @property
    def mean(self) -> float:
        return self.service_mean + self.wait_mean


class Scaled(DelayDistribution):
    """``factor · base`` — a resource action's effect on a service.

    pAccel's scenario "accelerates" a service by scaling its delay
    distribution (e.g. ``factor=0.9`` after a local resource allocation,
    Section 5.2).
    """

    def __init__(self, base: DelayDistribution, factor: float):
        if not factor > 0:
            raise SimulationError(f"factor must be > 0, got {factor}")
        self.base = base
        self.factor = float(factor)

    def sample(self, rng, size=None):
        return self.factor * self.base.sample(rng, size=size)

    @property
    def mean(self) -> float:
        return self.factor * self.base.mean


class Shifted(DelayDistribution):
    """``offset + base`` — a fixed floor under a random component.

    Models fixed overhead (e.g. the emulated WAN hop to the "remote"
    hospital in the eDiaMoND scenario) plus variable processing.
    """

    def __init__(self, base: DelayDistribution, offset: float):
        if not offset >= 0:
            raise SimulationError(f"offset must be >= 0, got {offset}")
        self.base = base
        self.offset = float(offset)

    def sample(self, rng, size=None):
        return self.offset + self.base.sample(rng, size=size)

    @property
    def mean(self) -> float:
        return self.offset + self.base.mean
