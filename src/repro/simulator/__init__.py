"""Discrete-event simulator of service-oriented systems.

Stands in for the paper's Matlab simulator (Section 4.1) and for the
eDiaMoND test-bed (Section 5): services "receive and send calls among
[each other] and randomly generate a processing delay upon receiving
calls", assembled by workflows into applications.  On top of the paper's
minimal generative story the simulator adds the effects a real test-bed
would exhibit — FIFO queueing, per-request demand correlation, immediate
-upstream coupling (the "bottleneck shift" signal the KERT-BN edges are
meant to capture), host resource contention, and imprecise monitoring
(the Eq.-4 leak).

Key entry points: :class:`SimulatedEnvironment` (assemble and run),
:func:`repro.simulator.scenarios.ediamond.ediamond_scenario` (the Fig. 1
six-service system), :func:`repro.simulator.scenarios.random_env.random_environment`
(the Figs. 3–5 synthetic environments).
"""

from repro.simulator.delays import (
    DelayDistribution,
    Exponential,
    LogNormal,
    Gamma,
    Deterministic,
    Uniform,
    Shifted,
)
from repro.simulator.service import ServiceSpec, Host
from repro.simulator.engine import Engine, TransactionRecord
from repro.simulator.workload import (
    OpenWorkload,
    ClosedWorkload,
    BurstyWorkload,
    FixedIntervalWorkload,
)
from repro.simulator.faults import FaultSchedule, Degradation
from repro.simulator.report import analyze_trace, format_report
from repro.simulator.monitoring import MonitoringAgent, ManagementServer
from repro.simulator.environment import SimulatedEnvironment
from repro.simulator.traces import trace_to_dataset, inject_missing

__all__ = [
    "DelayDistribution",
    "Exponential",
    "LogNormal",
    "Gamma",
    "Deterministic",
    "Uniform",
    "Shifted",
    "ServiceSpec",
    "Host",
    "Engine",
    "TransactionRecord",
    "OpenWorkload",
    "ClosedWorkload",
    "BurstyWorkload",
    "FixedIntervalWorkload",
    "FaultSchedule",
    "Degradation",
    "analyze_trace",
    "format_report",
    "MonitoringAgent",
    "ManagementServer",
    "SimulatedEnvironment",
    "trace_to_dataset",
    "inject_missing",
]
