"""Discrete-event simulator of service-oriented systems.

Stands in for the paper's Matlab simulator (Section 4.1) and for the
eDiaMoND test-bed (Section 5): services "receive and send calls among
[each other] and randomly generate a processing delay upon receiving
calls", assembled by workflows into applications.  On top of the paper's
minimal generative story the simulator adds the effects a real test-bed
would exhibit — FIFO queueing, per-request demand correlation, immediate
-upstream coupling (the "bottleneck shift" signal the KERT-BN edges are
meant to capture), host resource contention, and imprecise monitoring
(the Eq.-4 leak).

Key entry points: :class:`SimulatedEnvironment` (assemble and run),
:func:`repro.simulator.scenarios.ediamond.ediamond_scenario` (the Fig. 1
six-service system), :func:`repro.simulator.scenarios.random_env.random_environment`
(the Figs. 3–5 synthetic environments).
"""

from repro.simulator.delays import (
    GG1,
    DelayDistribution,
    Deterministic,
    Exponential,
    Gamma,
    LogNormal,
    MMk,
    Shifted,
    Uniform,
    erlang_c,
    kingman_waiting_time,
)
from repro.simulator.engine import Engine, TransactionRecord
from repro.simulator.environment import SimulatedEnvironment
from repro.simulator.faults import Degradation, FaultSchedule
from repro.simulator.monitoring import ManagementServer, MonitoringAgent
from repro.simulator.report import analyze_trace, format_report
from repro.simulator.service import Host, ServiceSpec
from repro.simulator.traces import inject_missing, trace_to_dataset
from repro.simulator.workload import (
    BurstyWorkload,
    ClosedWorkload,
    DiurnalWorkload,
    FixedIntervalWorkload,
    OpenWorkload,
)

__all__ = [
    "GG1",
    "DelayDistribution",
    "Deterministic",
    "Exponential",
    "Gamma",
    "LogNormal",
    "MMk",
    "Shifted",
    "Uniform",
    "erlang_c",
    "kingman_waiting_time",
    "Engine",
    "TransactionRecord",
    "SimulatedEnvironment",
    "Degradation",
    "FaultSchedule",
    "ManagementServer",
    "MonitoringAgent",
    "analyze_trace",
    "format_report",
    "Host",
    "ServiceSpec",
    "inject_missing",
    "trace_to_dataset",
    "BurstyWorkload",
    "ClosedWorkload",
    "DiurnalWorkload",
    "FixedIntervalWorkload",
    "OpenWorkload",
]
