"""Operational trace analysis.

Turns raw :class:`~repro.simulator.engine.TransactionRecord` streams into
the per-service summary an operator (or an autonomic manager deciding
where to look first) reads: elapsed-time statistics, invocation counts,
and each service's share of end-to-end time, split by whether it sits on
the critical (dominant) parallel branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import DataError
from repro.simulator.engine import TransactionRecord


@dataclass(frozen=True)
class ServiceStats:
    """Per-service operational summary over a trace."""

    service: str
    n_invocations: int
    n_transactions: int
    mean_elapsed: float
    p50_elapsed: float
    p95_elapsed: float
    max_elapsed: float
    share_of_response: float

    def row(self) -> dict:
        return {
            "service": self.service,
            "invocations": self.n_invocations,
            "mean_s": self.mean_elapsed,
            "p50_s": self.p50_elapsed,
            "p95_s": self.p95_elapsed,
            "max_s": self.max_elapsed,
            "share": self.share_of_response,
        }


@dataclass(frozen=True)
class TraceReport:
    """Whole-trace summary."""

    n_transactions: int
    mean_response: float
    p95_response: float
    services: tuple

    def sorted_by_share(self) -> tuple:
        return tuple(
            sorted(self.services, key=lambda s: s.share_of_response, reverse=True)
        )

    def to_rows(self) -> list[dict]:
        return [s.row() for s in self.sorted_by_share()]


def analyze_trace(
    records: Sequence[TransactionRecord],
    services: "Sequence[str] | None" = None,
) -> TraceReport:
    """Summarize a trace; ``services`` defaults to everything observed."""
    if not records:
        raise DataError("no transaction records to analyze")
    responses = np.array([r.response_time for r in records])
    if services is None:
        seen: set[str] = set()
        for r in records:
            seen |= set(r.elapsed)
        services = sorted(seen)
    total_response = float(responses.sum())
    stats = []
    for s in services:
        elapsed = np.array([r.elapsed[s] for r in records if s in r.elapsed])
        invocations = sum(r.invocations.get(s, 0) for r in records)
        if elapsed.size == 0:
            stats.append(
                ServiceStats(
                    service=str(s),
                    n_invocations=0,
                    n_transactions=0,
                    mean_elapsed=0.0,
                    p50_elapsed=0.0,
                    p95_elapsed=0.0,
                    max_elapsed=0.0,
                    share_of_response=0.0,
                )
            )
            continue
        stats.append(
            ServiceStats(
                service=str(s),
                n_invocations=int(invocations),
                n_transactions=int(elapsed.size),
                mean_elapsed=float(elapsed.mean()),
                p50_elapsed=float(np.percentile(elapsed, 50)),
                p95_elapsed=float(np.percentile(elapsed, 95)),
                max_elapsed=float(elapsed.max()),
                share_of_response=float(elapsed.sum() / total_response)
                if total_response > 0
                else 0.0,
            )
        )
    return TraceReport(
        n_transactions=len(records),
        mean_response=float(responses.mean()),
        p95_response=float(np.percentile(responses, 95)),
        services=tuple(stats),
    )


def format_report(report: TraceReport) -> str:
    """Render a fixed-width operator report."""
    lines = [
        f"transactions: {report.n_transactions}   "
        f"mean D: {report.mean_response:.3f} s   "
        f"p95 D: {report.p95_response:.3f} s",
        f"{'service':>10s} {'inv':>6s} {'mean':>8s} {'p50':>8s} "
        f"{'p95':>8s} {'max':>8s} {'share':>7s}",
    ]
    for s in report.sorted_by_share():
        lines.append(
            f"{s.service:>10s} {s.n_invocations:6d} {s.mean_elapsed:8.3f} "
            f"{s.p50_elapsed:8.3f} {s.p95_elapsed:8.3f} {s.max_elapsed:8.3f} "
            f"{s.share_of_response:6.1%}"
        )
    return "\n".join(lines)
