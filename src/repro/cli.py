"""Command-line toolchain.

The paper promises "an implementation … deliver[ed] to operate under a
flexible model (re)construction scheme [that] can be integrated into
autonomic solutions with minimal effort".  The CLI is that integration
surface: workflows come in as JSON, monitoring windows as CSV, models go
out as JSON bundles, and assessments print machine-parseable lines.

Subcommands
-----------
- ``inspect-workflow`` — derive and print ``f`` and the KERT-BN structure.
- ``simulate``         — generate a monitored dataset from a scenario.
- ``build``            — build a KERT-BN or NRT-BN from workflow + data.
- ``score``            — test log10-likelihood of a saved model.
- ``assess``           — response-time assessment / violation probability.
- ``dcomp``            — posterior of an unobservable service.
- ``corpus``           — scenario corpus: ``list`` the cells of the
  (family × size × delay-regime) matrix, ``generate`` workflow JSON +
  simulated CSV + manifest for cells, or ``run`` the KERT-BN vs NRT-BN
  comparison per cell and print the summary.
- ``registry``         — versioned model store: list/publish/activate/rollback.
- ``serve``            — guarded one-shot query through the fallback chain.
- ``serve-fabric``     — stand up the sharded multi-tenant fabric and
  drive a mixed-tenant load through the dynamic batcher, printing
  sustained qps, tail latency, coalesce ratio, and per-tenant budgets.
- ``obs``              — dump or reset this process's observability state
  (``snapshot --format prom`` emits the same Prometheus text the HTTP
  ``/metrics`` endpoint serves).
- ``dashboard``        — render a snapshot (live state, ``--trace-out``
  file, or a running endpoint's ``/snapshot`` URL) as a terminal
  summary and/or a self-contained HTML report.

Every subcommand also accepts a global ``--trace-out PATH``: it enables
:mod:`repro.obs` for the run, wraps the command in a ``cli.<command>``
span, and writes the full observability snapshot (metrics + span tree)
as JSON to ``PATH`` on exit.  A global ``--serve-metrics PORT`` likewise
enables observability and serves ``/metrics`` + ``/snapshot`` over HTTP
for the duration of the command, so long runs can be scraped live.

Example
-------
::

    repro simulate --scenario ediamond --points 600 --seed 7 \
        --out train.csv --workflow-out wf.json
    repro build --family kert --kind continuous \
        --workflow wf.json --data train.csv --out model.json
    repro assess --model model.json --threshold 2.0
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

import numpy as np

from repro.exceptions import ReproError


def _parse_assignments(pairs: "Sequence[str] | None") -> dict[str, float]:
    out: dict[str, float] = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise SystemExit(f"expected NAME=VALUE, got {pair!r}")
        name, value = pair.split("=", 1)
        try:
            out[name.strip()] = float(value)
        except ValueError:
            raise SystemExit(f"value for {name!r} is not a number: {value!r}")
    return out


# --------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------- #


def cmd_inspect_workflow(args: argparse.Namespace) -> int:
    from repro.workflow.parser import workflow_from_json
    from repro.workflow.response_time import response_time_function
    from repro.workflow.structure import kert_bn_structure, workflow_edges

    from repro.workflow.visualize import render_structure_summary, render_workflow

    with open(args.workflow) as fh:
        wf = workflow_from_json(fh.read())
    f = response_time_function(wf)
    dag = kert_bn_structure(wf, response=args.response)
    print(f"services ({wf.n_services()}): {', '.join(wf.services())}")
    print(f"f: {args.response} = {f.to_string()}")
    print(render_workflow(wf))
    print("workflow edges:")
    for u, v in workflow_edges(wf):
        print(f"  {u} -> {v}")
    print(f"KERT-BN structure: {render_structure_summary(dag, args.response)}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.bn.csvio import dataset_to_csv
    from repro.simulator.scenarios.ediamond import ediamond_scenario
    from repro.simulator.scenarios.random_env import random_environment
    from repro.workflow.parser import workflow_to_json

    if args.scenario == "ediamond":
        env = ediamond_scenario()
    else:
        env = random_environment(args.n_services, rng=args.seed)
    if args.via_agents:
        data = env.simulate_via_agents(
            args.points, rng=args.seed + 1,
            reporting_loss=args.reporting_loss,
        )
    else:
        data = env.simulate(args.points, rng=args.seed + 1)
    dataset_to_csv(data, args.out)
    print(f"wrote {data.n_rows} points x {len(data.columns)} columns to {args.out}")
    if args.workflow_out:
        with open(args.workflow_out, "w") as fh:
            fh.write(workflow_to_json(env.workflow, indent=2))
        print(f"wrote workflow to {args.workflow_out}")
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    from repro.bn.csvio import dataset_from_csv
    from repro.core.kertbn import build_continuous_kertbn, build_discrete_kertbn
    from repro.core.nrtbn import build_continuous_nrtbn, build_discrete_nrtbn
    from repro.core.persistence import save_model
    from repro.workflow.parser import workflow_from_json

    if args.family == "kert" and not args.workflow:
        raise SystemExit("--workflow is required for --family kert")
    data = dataset_from_csv(args.data)
    if args.family == "kert":
        with open(args.workflow) as fh:
            wf = workflow_from_json(fh.read())
        if args.kind == "continuous":
            model = build_continuous_kertbn(wf, data, response=args.response)
        else:
            model = build_discrete_kertbn(
                wf, data, response=args.response, n_bins=args.bins
            )
    else:
        if args.kind == "continuous":
            model = build_continuous_nrtbn(
                data, response=args.response, rng=args.seed,
                n_restarts=args.restarts,
            )
        else:
            model = build_discrete_nrtbn(
                data, response=args.response, rng=args.seed,
                n_bins=args.bins, n_restarts=args.restarts,
            )
    save_model(model, args.out)
    rep = model.report
    print(f"model: {rep.model_kind}")
    print(f"nodes={rep.n_nodes} edges={rep.n_edges} parameters={rep.n_parameters}")
    print(f"construction_seconds={rep.construction_seconds:.6f} "
          f"(structure={rep.structure_seconds:.6f}, "
          f"parameters={rep.parameter_seconds:.6f})")
    print(f"saved to {args.out}")
    return 0


def cmd_score(args: argparse.Namespace) -> int:
    from repro.bn.csvio import dataset_from_csv
    from repro.core.persistence import load_model

    model = load_model(args.model)
    data = dataset_from_csv(args.data)
    print(f"log10_likelihood={model.log10_likelihood(data):.4f} "
          f"n_rows={data.n_rows}")
    return 0


def cmd_assess(args: argparse.Namespace) -> int:
    from repro.apps.paccel import PAccel
    from repro.core.persistence import load_model

    evidence = _parse_assignments(args.set)
    model = load_model(args.model)
    pa = PAccel(model)
    result = pa.project(evidence, rng=args.seed) if evidence else pa.baseline(
        rng=args.seed
    )
    print(f"E[D]={result.mean:.4f} sd={result.std:.4f}")
    for h in args.threshold or ():
        print(f"P(D>{h:g})={result.violation_probability(h):.4f}")
    return 0


def cmd_dcomp(args: argparse.Namespace) -> int:
    from repro.apps.dcomp import DComp
    from repro.core.persistence import load_model

    model = load_model(args.model)
    observed = _parse_assignments(args.observe)
    if not observed:
        raise SystemExit("dcomp needs at least one --observe NAME=VALUE")
    result = DComp(model).posterior(args.target, observed, rng=args.seed)
    print(f"prior:     mean={result.prior_mean:.4f} sd={result.prior_std:.4f}")
    print(f"posterior: mean={result.posterior_mean:.4f} sd={result.posterior_std:.4f}")
    return 0


def cmd_localize(args: argparse.Namespace) -> int:
    from repro.apps.localization import ProblemLocalizer
    from repro.core.persistence import load_model

    observed = _parse_assignments(args.observe)
    if not observed:
        raise SystemExit("localize needs at least one --observe NAME=VALUE")
    model = load_model(args.model)
    suspects = ProblemLocalizer(model).localize(observed, top=args.top)
    print(f"{'rank':>4s} {'service':>10s} {'z':>7s} {'D_shift':>9s} {'blame':>9s}")
    for rank, s in enumerate(suspects, start=1):
        print(
            f"{rank:4d} {s.service:>10s} {s.z_score:7.2f} "
            f"{s.projected_d_shift:9.3f} {s.blame:9.4f}"
        )
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.obs.export import render

    if args.action == "reset":
        obs.reset()
        print("observability state reset")
        return 0
    if args.action == "enable":
        obs.enable()
        print("observability enabled for this process")
        return 0
    # snapshot — one serialization path shared with the HTTP endpoint
    fmt = "json" if args.json else args.format
    text = render(fmt)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote observability snapshot to {args.out}")
    else:
        print(text)
    return 0


def cmd_slo(args: argparse.Namespace) -> int:
    # action == "budgets": invert a saved model into per-service budgets.
    import json as _json

    from repro.bn.budgets import derive_budgets, discrete_blame, normal_blame
    from repro.core.persistence import load_model
    from repro.exceptions import InferenceError

    model = load_model(args.model)
    alloc = derive_budgets(model, sla=args.sla, target=args.target)
    blame: dict = {}
    if not args.no_blame:
        try:
            from repro.apps.assessment import RapidAssessor

            assessor = RapidAssessor(model)
            d_mean, d_var, moments = assessor.response_moments()
            blame = normal_blame(
                moments, d_mean, d_var, alloc.as_mapping(), args.sla
            )
        except InferenceError:
            # Discrete model: blame from the compiled engine's joints.
            blame = discrete_blame(
                model.network.compiled(),
                model.discretizer,
                model.response,
                alloc.as_mapping(),
                args.sla,
            )
    print(
        f"objective: P(D > {args.sla:g}) <= {args.target:g}   "
        f"slack={alloc.slack:.3f} composed={alloc.composed:.4f} "
        f"tail_total={alloc.tail_total:.4f} "
        f"{'feasible' if alloc.feasible else 'INFEASIBLE'}"
    )
    print(f"composition: {alloc.expression}")
    print(f"{'service':>10s} {'budget':>9s} {'mean':>8s} {'std':>8s} "
          f"{'tail':>8s} {'blame':>8s}")
    for sb in alloc.budgets:
        print(
            f"{sb.service:>10s} {sb.budget:9.4f} {sb.mean:8.4f} "
            f"{sb.std:8.4f} {sb.tail_mass:8.5f} "
            f"{blame.get(sb.service, 0.0):8.4f}"
        )
    if args.json:
        payload = alloc.to_dict()
        payload["blame"] = blame
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote budget allocation to {args.json}")
    return 0


def cmd_dashboard(args: argparse.Namespace) -> int:
    from repro.obs.dashboard import load_snapshot, render_html, render_terminal

    snap = load_snapshot(args.url or args.snapshot)
    if args.html:
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(render_html(snap, title=args.title) + "\n")
        print(f"wrote HTML report to {args.html}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(render_terminal(snap) + "\n")
        print(f"wrote dashboard summary to {args.out}")
    elif not args.html or args.print:
        print(render_terminal(snap))
    return 0


def _corpus_cells(args: argparse.Namespace):
    from repro.corpus import default_corpus, spec_by_name

    sizes = tuple(int(s) for s in args.sizes.split(",")) if args.sizes else (10, 40)
    corpus = default_corpus(sizes=sizes)
    if args.cell:
        return tuple(spec_by_name(name, corpus) for name in args.cell)
    return corpus


def cmd_corpus(args: argparse.Namespace) -> int:
    import os

    from repro.bn.csvio import dataset_to_csv
    from repro.corpus import build_scenario, format_cell_report, run_cell, summarize
    from repro.workflow.parser import workflow_to_json

    cells = _corpus_cells(args)
    if args.action == "list":
        for spec in cells:
            print(spec.describe())
        return 0
    if args.action == "generate":
        if not args.out_dir:
            raise SystemExit("corpus generate needs --out-dir DIR")
        for spec in cells:
            scenario = build_scenario(spec, seed=args.seed)
            cell_dir = os.path.join(args.out_dir, spec.name)
            os.makedirs(cell_dir, exist_ok=True)
            with open(os.path.join(cell_dir, "workflow.json"), "w") as fh:
                fh.write(workflow_to_json(scenario.env.workflow, indent=2))
            data = scenario.env.simulate(args.points, rng=args.seed + 1)
            dataset_to_csv(data, os.path.join(cell_dir, "data.csv"))
            manifest = {
                "cell": spec.name,
                "seed": args.seed,
                "n_points": data.n_rows,
                "family": spec.family,
                "n_services": spec.n_services,
                "delay": spec.delay,
                "arrivals": spec.arrivals,
                "failure_storm": spec.failure_storm,
                "utilization": spec.utilization,
                "f": scenario.f.to_string(),
            }
            with open(os.path.join(cell_dir, "scenario.json"), "w") as fh:
                json.dump(manifest, fh, indent=2)
                fh.write("\n")
            print(
                f"{spec.name}: wrote workflow.json, scenario.json and "
                f"{data.n_rows} data points under {cell_dir}"
            )
        return 0
    # run — the KERT-BN vs NRT-BN comparison per cell, plus the summary
    results = {}
    for spec in cells:
        cell = run_cell(
            spec, seed=args.seed, n_train=args.train, n_test=args.test
        )
        results[spec.name] = cell
        print(format_cell_report(spec.name, cell))
    summary = summarize(results)
    print(
        f"summary: {summary['n_cells']} cells, "
        f"KERT-BN wins {summary['kert_win_fraction']:.0%}, "
        f"median gap {summary['median_log10_gap_per_row']:+.3f} "
        f"log10/row, median build ratio "
        f"{summary['nrt_over_kert_build_median']:.1f}x"
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"cells": results, "summary": summary}, fh, indent=2)
            fh.write("\n")
        print(f"wrote corpus results to {args.json}")
    return 0


def cmd_registry(args: argparse.Namespace) -> int:
    from repro.core.persistence import load_model
    from repro.serving.registry import ModelRegistry

    reg = ModelRegistry(args.root, keep=args.keep)
    if args.action == "list":
        if not reg.versions():
            print("registry is empty")
            return 0
        for info in reg.versions():
            marker = "*" if info.version == reg.active_version else " "
            health = "healthy" if info.healthy else f"UNHEALTHY ({info.reason})"
            print(
                f"{marker} v{info.version:<6d} {info.model_kind:<22s} {health}"
            )
        return 0
    if args.action == "publish":
        if not args.model:
            raise SystemExit("registry publish needs --model BUNDLE.json")
        version = reg.publish(load_model(args.model), activate=not args.no_activate)
        print(f"published v{version}"
              + ("" if args.no_activate else " (active)"))
        return 0
    if args.action == "activate":
        if args.version is None:
            raise SystemExit("registry activate needs --version N")
        reg.activate(args.version)
        print(f"active: v{reg.active_version}")
        return 0
    # rollback
    target = reg.rollback(reason=args.reason)
    print(f"rolled back; active: v{target}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.persistence import load_model
    from repro.serving.registry import ModelRegistry
    from repro.serving.server import ModelServer

    if bool(args.model) == bool(args.registry):
        raise SystemExit("serve needs exactly one of --model / --registry")
    source = (
        load_model(args.model) if args.model else ModelRegistry(args.registry)
    )
    server = ModelServer(source, deadline_seconds=args.deadline, rng=args.seed)
    evidence = _parse_assignments(args.observe)
    if args.threshold is not None:
        result = server.violation_prob(args.threshold, evidence or None)
        label = f"P(D>{args.threshold:g})"
    else:
        result = server.query([args.target or server.model.response], evidence)
        label = f"P({args.target or server.model.response})"
    if server.version is not None:
        print(f"serving: v{server.version}")
    print(f"status: {result.status}")
    if result.status == "rejected":
        for reason in result.reasons:
            print(f"  reason: {reason}")
        return 1
    if result.status != "ok":
        for tier, err in result.tier_errors.items():
            print(f"  {tier}: {err}")
        return 1
    print(f"tier: {result.tier}" + (" (approximate)" if result.approximate else ""))
    for tier, err in result.tier_errors.items():
        print(f"  degraded past {tier}: {err}")
    if np.ndim(result.value) == 0:
        print(f"{label}={float(result.value):.4f}")
    else:
        pmf = np.asarray(result.value, dtype=float).ravel()
        print(f"{label}=[{', '.join(f'{p:.4f}' for p in pmf)}]")
    return 0


def cmd_serve_fabric(args: argparse.Namespace) -> int:
    import time
    from concurrent.futures import ThreadPoolExecutor

    from repro.core.persistence import load_model
    from repro.serving.fabric import build_fabric
    from repro.serving.registry import ModelRegistry

    sources = [load_model(path) for path in args.model or ()]
    sources += [ModelRegistry(root) for root in args.registry or ()]
    if not sources:
        raise SystemExit(
            "serve-fabric needs at least one --model / --registry"
        )
    n_shards = max(args.shards or 0, len(sources))
    # Fewer sources than shards: replicate round-robin to fill the ring.
    sources = [sources[i % len(sources)] for i in range(n_shards)]

    evidence = _parse_assignments(args.observe) or None
    fabric = build_fabric(
        sources,
        n_replicas=max(1, args.replicas),
        hedge=bool(args.hedge),
        probe_interval_s=args.probe_interval,
        max_batch=args.max_batch,
        max_wait_us=args.max_wait_us,
        deadline_seconds=args.deadline,
        rng=args.seed,
    )
    if args.inject_faults:
        from repro.serving.faults import ReplicaFaultInjector

        group = fabric.router.shards[args.fault_shard % n_shards]
        replica = args.fault_replica % group.n_replicas
        injector = ReplicaFaultInjector(rng=args.seed)
        if args.inject_faults == "blackout":
            injector.blackout(duration=args.fault_duration)
        elif args.inject_faults == "latency":
            injector.latency_storm(
                0.05, probability=0.5, duration=args.fault_duration
            )
        else:  # errors
            injector.error_burst(0.5, duration=args.fault_duration)
        group.inject_fault(replica, injector)
        print(
            f"injecting {args.inject_faults} fault: shard "
            f"{args.fault_shard % n_shards} replica {replica} for "
            f"{args.fault_duration} calls"
        )
    target = [args.target or fabric.router.shards[0].model.response]
    tenants = [f"tenant-{i}" for i in range(args.tenants)]
    burst = max(1, args.burst)

    def worker(w: int) -> list:
        rng = np.random.default_rng(args.seed + 1 + w)
        n = args.queries // args.threads + (
            1 if w < args.queries % args.threads else 0
        )
        out, pending = [], []

        def drain():
            for t0, p in pending:
                r = p.result(timeout=60.0)
                out.append((time.perf_counter() - t0, r.status))
            pending.clear()

        for _ in range(n):
            tenant = tenants[int(rng.integers(len(tenants)))]
            pending.append(
                (time.perf_counter(), fabric.submit(tenant, target, evidence))
            )
            if len(pending) >= burst:
                drain()
        drain()
        return out

    t_start = time.perf_counter()
    try:
        with ThreadPoolExecutor(args.threads) as ex:
            outcomes = [
                x for chunk in ex.map(worker, range(args.threads))
                for x in chunk
            ]
    finally:
        fabric.close()
    elapsed = time.perf_counter() - t_start
    lats = sorted(lat for lat, _ in outcomes)
    n_failed = sum(1 for _, status in outcomes if status == "failed")

    def pct(q: float) -> float:
        return lats[min(len(lats) - 1, int(q * len(lats)))] * 1e3

    b = fabric.batcher
    print(
        f"shards={n_shards} replicas={max(1, args.replicas)} "
        f"tenants={len(tenants)} queries={len(lats)} "
        f"threads={args.threads} burst={burst}"
    )
    print(
        f"sustained: {len(lats) / elapsed:,.0f} qps over {elapsed:.2f}s  "
        f"p50={pct(0.50):.2f}ms p95={pct(0.95):.2f}ms p99={pct(0.99):.2f}ms"
    )
    print(
        f"availability: {1.0 - n_failed / max(1, len(outcomes)):.4%} "
        f"({n_failed} failed of {len(outcomes)})"
    )
    print(
        f"coalesce: {b.coalesce_ratio:.2f} rows/flush "
        f"({b.n_coalesced_rows} rows in {b.n_flushes} flushes, "
        f"{b.n_bypass} bypassed to singles)"
    )
    for gi, group in enumerate(fabric.router.shards):
        snap = group.snapshot()
        fo, hedge = snap["failover"], snap["hedge"]
        if (
            group.n_replicas == 1
            and not fo["switches"]
            and not hedge["issued"]
            and not snap["faults_injected"]
        ):
            continue
        replicas = " ".join(
            f"{r['name']}:{r['state']}({r['score']:.2f})"
            for r in snap["replicas"]
        )
        print(
            f"shard{gi}: {replicas}  failovers={fo['switches']} "
            f"exhausted={fo['exhausted']} hedge issued/won/wasted="
            f"{hedge['issued']}/{hedge['won']}/{hedge['wasted']} "
            f"faults={snap['faults_injected']}"
        )
    if fabric.prober is not None:
        ps = fabric.prober.snapshot()
        if ps["probes"]:
            print(
                f"prober: {ps['probes']} probes ({ps['clean']} clean), "
                f"{ps['readmitted']} readmitted"
            )
    print(f"{'tenant':<12s} {'shard':>5s} {'ok':>8s} {'rejected':>8s} "
          f"{'shed':>6s} {'failed':>6s} {'breaker':>9s}")
    snap = fabric.stats()
    for name, t in snap["tenants"].items():
        s = t["stats"]
        print(
            f"{name:<12s} {t['shard']:>5d} {s['n_ok']:>8d} "
            f"{s['n_rejected']:>8d} {s['n_shed']:>6d} {s['n_failed']:>6d} "
            f"{t['breaker_state']:>9s}"
        )
    return 0


# --------------------------------------------------------------------- #
# Parser wiring
# --------------------------------------------------------------------- #


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="KERT-BN performance-modeling toolchain (IPDPS 2007 reproduction)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="enable observability for this run and write the snapshot "
        "(metrics + span tree) as JSON to PATH",
    )
    parser.add_argument(
        "--serve-metrics",
        metavar="PORT",
        type=int,
        default=None,
        help="enable observability and serve /metrics + /snapshot on "
        "this port (0 picks a free one) while the command runs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("inspect-workflow", help="derive f and structure")
    p.add_argument("workflow", help="workflow JSON file")
    p.add_argument("--response", default="D")
    p.set_defaults(fn=cmd_inspect_workflow)

    p = sub.add_parser("simulate", help="generate a monitored dataset")
    p.add_argument("--scenario", choices=("ediamond", "random"), default="ediamond")
    p.add_argument("--n-services", type=int, default=30)
    p.add_argument("--points", type=int, default=600)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True, help="output CSV path")
    p.add_argument("--workflow-out", help="also write the workflow JSON here")
    p.add_argument("--via-agents", action="store_true",
                   help="route measurements through the Fig.-1 monitoring "
                        "pipeline (per-host agents + management server)")
    p.add_argument("--reporting-loss", type=float, default=0.0,
                   help="per-measurement drop probability on the agent "
                        "path (implies NaNs in the dataset; needs "
                        "--via-agents)")
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("build", help="build a model from workflow + data")
    p.add_argument("--family", choices=("kert", "nrt"), required=True)
    p.add_argument("--kind", choices=("continuous", "discrete"), default="continuous")
    p.add_argument("--workflow", help="workflow JSON (required for kert)")
    p.add_argument("--data", required=True, help="training CSV")
    p.add_argument("--out", required=True, help="output model JSON")
    p.add_argument("--response", default="D")
    p.add_argument("--bins", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--restarts", type=int, default=None,
                   help="K2 random restarts (nrt only)")
    p.set_defaults(fn=cmd_build)

    p = sub.add_parser("score", help="log10-likelihood of a model on data")
    p.add_argument("--model", required=True)
    p.add_argument("--data", required=True)
    p.set_defaults(fn=cmd_score)

    p = sub.add_parser("assess", help="response-time assessment (pAccel)")
    p.add_argument("--model", required=True)
    p.add_argument("--set", action="append", metavar="NAME=VALUE",
                   help="predicted service mean(s)")
    p.add_argument("--threshold", action="append", type=float,
                   help="print P(D > threshold); repeatable")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_assess)

    p = sub.add_parser("localize", help="rank services by blame for a slowdown")
    p.add_argument("--model", required=True,
                   help="a continuous KERT-BN bundle (the healthy reference)")
    p.add_argument("--observe", action="append", metavar="NAME=VALUE",
                   help="current mean elapsed time per observable service")
    p.add_argument("--top", type=int, default=None)
    p.set_defaults(fn=cmd_localize)

    p = sub.add_parser("dcomp", help="posterior of an unobservable service")
    p.add_argument("--model", required=True)
    p.add_argument("--target", required=True)
    p.add_argument("--observe", action="append", metavar="NAME=VALUE")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_dcomp)

    p = sub.add_parser(
        "corpus",
        help="scenario corpus: list cells, generate scenario data, or "
        "run the KERT-BN vs NRT-BN comparison matrix",
    )
    p.add_argument("action", choices=("list", "generate", "run"))
    p.add_argument("--cell", action="append", metavar="NAME",
                   help="restrict to this cell, e.g. mixed_n10_mmk "
                   "(repeatable; default: every cell)")
    p.add_argument("--sizes", metavar="N,N,...",
                   help="environment sizes for the corpus grid "
                   "(default: 10,40)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--points", type=int, default=200,
                   help="dataset rows per cell (generate only)")
    p.add_argument("--out-dir", metavar="DIR",
                   help="write per-cell workflow.json / data.csv / "
                   "scenario.json under DIR (generate only)")
    p.add_argument("--train", type=int, default=60,
                   help="training rows per cell (run only)")
    p.add_argument("--test", type=int, default=120,
                   help="test rows per cell (run only)")
    p.add_argument("--json", metavar="PATH",
                   help="also write cells + summary as JSON (run only)")
    p.set_defaults(fn=cmd_corpus)

    p = sub.add_parser("registry", help="versioned model registry")
    p.add_argument("action", choices=("list", "publish", "activate", "rollback"))
    p.add_argument("--root", required=True, help="registry directory")
    p.add_argument("--model", help="bundle to publish")
    p.add_argument("--version", type=int, help="version to activate")
    p.add_argument("--keep", type=int, default=5, help="retention (last N)")
    p.add_argument("--no-activate", action="store_true",
                   help="publish without activating")
    p.add_argument("--reason", default="operator rollback",
                   help="reason recorded on rollback")
    p.set_defaults(fn=cmd_registry)

    p = sub.add_parser(
        "obs", help="dump or reset this process's observability state"
    )
    p.add_argument("action", choices=("snapshot", "reset", "enable"))
    p.add_argument("--format", choices=("text", "json", "prom"), default="text",
                   help="snapshot serialization: human text, JSON, or "
                   "Prometheus exposition (same renderer as /metrics)")
    p.add_argument("--json", action="store_true",
                   help="shorthand for --format json (kept for back-compat)")
    p.add_argument("--out", help="write the snapshot here instead of stdout")
    p.set_defaults(fn=cmd_obs)

    p = sub.add_parser(
        "slo",
        help="SLO tooling: derive per-service budgets from a model",
    )
    p.add_argument("action", choices=("budgets",))
    p.add_argument("--model", required=True,
                   help="saved model bundle (from `repro build`)")
    p.add_argument("--sla", type=float, required=True,
                   help="end-to-end response-time bound (seconds)")
    p.add_argument("--target", type=float, required=True,
                   help="tolerated P(D > sla), in (0, 1)")
    p.add_argument("--no-blame", action="store_true",
                   help="skip the posterior blame column (faster)")
    p.add_argument("--json", metavar="PATH",
                   help="also write the allocation (+ blame) as JSON")
    p.set_defaults(fn=cmd_slo)

    p = sub.add_parser(
        "dashboard",
        help="render an observability snapshot as a terminal summary "
        "and/or self-contained HTML report",
    )
    p.add_argument("--snapshot", metavar="PATH",
                   help="snapshot JSON file (e.g. from --trace-out); "
                   "default: this process's live state")
    p.add_argument("--url", metavar="URL",
                   help="scrape a running export endpoint's /snapshot "
                   "instead of reading a file")
    p.add_argument("--html", metavar="PATH",
                   help="write a self-contained HTML report here")
    p.add_argument("--out", metavar="PATH",
                   help="write the terminal summary here instead of stdout")
    p.add_argument("--print", action="store_true",
                   help="print the terminal summary even when --html is given")
    p.add_argument("--title", default="repro observability report")
    p.set_defaults(fn=cmd_dashboard)

    p = sub.add_parser("serve", help="guarded query with fallback chain")
    p.add_argument("--model", help="serve one bundle file")
    p.add_argument("--registry", help="serve a registry's active version")
    p.add_argument("--target", help="query variable (default: the response)")
    p.add_argument("--observe", action="append", metavar="NAME=VALUE",
                   help="evidence as raw measurement means")
    p.add_argument("--threshold", type=float,
                   help="print P(D > threshold) instead of a pmf")
    p.add_argument("--deadline", type=float, default=None,
                   help="per-query deadline in seconds")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "serve-fabric",
        help="sharded multi-tenant fabric: drive a batched load and "
        "print qps / tail latency / coalesce ratio / tenant budgets",
    )
    p.add_argument("--model", action="append", metavar="BUNDLE",
                   help="bundle file per shard (repeatable)")
    p.add_argument("--registry", action="append", metavar="ROOT",
                   help="registry root per shard (repeatable)")
    p.add_argument("--shards", type=int, default=None,
                   help="replicate the given sources round-robin up to "
                   "N shards")
    p.add_argument("--replicas", type=int, default=1,
                   help="ModelServer replicas per ring slot (failover "
                   "and hedging need >= 2)")
    p.add_argument("--hedge", action="store_true",
                   help="issue a backup query to a sibling replica past "
                   "the adaptive p95 hedge delay")
    p.add_argument("--probe-interval", type=float, default=0.25,
                   help="seconds between canary sweeps readmitting "
                   "ejected replicas")
    p.add_argument("--inject-faults",
                   choices=("blackout", "latency", "errors"), default=None,
                   help="seeded chaos drill against one replica")
    p.add_argument("--fault-shard", type=int, default=0)
    p.add_argument("--fault-replica", type=int, default=0)
    p.add_argument("--fault-duration", type=int, default=500,
                   help="fault window length in replica calls")
    p.add_argument("--tenants", type=int, default=8)
    p.add_argument("--queries", type=int, default=2000)
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--burst", type=int, default=16,
                   help="pipelined submissions per caller before waiting")
    p.add_argument("--max-batch", type=int, default=64)
    p.add_argument("--max-wait-us", type=float, default=2000.0)
    p.add_argument("--target", help="query variable (default: response)")
    p.add_argument("--observe", action="append", metavar="NAME=VALUE",
                   help="shared evidence for every query")
    p.add_argument("--deadline", type=float, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_serve_fabric)

    return parser


def main(argv: "Sequence[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    trace_out = getattr(args, "trace_out", None)
    serve_port = getattr(args, "serve_metrics", None)
    server = None
    if trace_out or serve_port is not None:
        from repro import obs

        obs.enable()
    if serve_port is not None:
        from repro.obs.export import ExportServer

        server = ExportServer(port=serve_port)
        server.start()
        print(f"serving metrics at {server.url}/metrics", file=sys.stderr)
    try:
        if trace_out or server is not None:
            with obs.span(f"cli.{args.command}"):
                code = args.fn(args)
        else:
            code = args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if trace_out:
            with open(trace_out, "w") as fh:
                json.dump(obs.snapshot(), fh, indent=2, default=str)
                fh.write("\n")
            print(f"wrote observability snapshot to {trace_out}", file=sys.stderr)
        if server is not None:
            server.stop()
    return code


if __name__ == "__main__":
    raise SystemExit(main())
