"""Per-replica health scoring and probe-driven readmission.

The replicated fabric (:class:`~repro.serving.fabric.ReplicaGroup`)
needs two signals that the per-tier circuit breakers do not give it:

1. a *graded* health score per replica — breakers are binary and
   per-tier, but routing wants "which replica is healthiest *right
   now*", blending error rate, deadline misses, and latency into one
   ordering; and
2. a *recovery path* for replicas that were ejected — a blacked-out
   replica must not see live traffic again until canary probes prove
   it answers cleanly, mirroring the half-open discipline of
   :class:`~repro.serving.breaker.CircuitBreaker` but driven by a
   background loop instead of caller traffic.

Replica health is a three-state machine::

            score < eject_below                clean canary
    ACTIVE ---------------------> EJECTED --------------------> PROBATION
       ^   (after min_samples)       ^                              |
       |                             | failed canary                | clean
       |                             +------------------------------+ canary
       |        readmit_after consecutive clean canaries            | streak
       +------------------------------------------------------------+

- :class:`ReplicaHealth` — EWMA error/miss/latency tracking with a
  multiplicative score in [0, 1]; ejects itself when the score falls
  below the policy floor.  A streaming :class:`QuantileTracker` keeps
  an O(1) latency quantile estimate (used by the fabric's adaptive
  hedge delay).
- :class:`HealthProber` — daemon thread that periodically sends canary
  queries to every non-ACTIVE replica and readmits it after
  ``readmit_after`` consecutive clean answers (resetting its breakers
  so the readmitted replica starts with a clean slate).

Metrics (all through :mod:`repro.obs`, hence the Prometheus exporter):
``fabric.health.<name>.score`` gauges, ``fabric.health.ejections`` /
``fabric.health.readmissions`` counters, and ``fabric.probe.{probes,
clean,failed}`` counters from the probe loop.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.exceptions import ServingError
from repro.obs.runtime import OBS as _OBS

#: Replica health states.
ACTIVE = "active"
EJECTED = "ejected"
PROBATION = "probation"

REPLICA_STATES = (ACTIVE, EJECTED, PROBATION)


class QuantileTracker:
    """Streaming quantile estimate in O(1) memory (Frugal-style SGD).

    Each sample nudges the estimate up by ``step * spread * q`` when it
    lands above, down by ``step * spread * (1 - q)`` when below, where
    ``spread`` is an EWMA of the absolute deviation — the asymmetric
    steps balance exactly when a fraction ``1 - q`` of samples land
    above the estimate, i.e. at the ``q``-quantile.  Adapting the step
    to the observed spread makes convergence scale-free (microsecond
    batcher latencies and multi-second storm latencies both track).
    """

    __slots__ = ("q", "step", "value", "spread", "n", "_lock")

    def __init__(self, q: float = 0.95, step: float = 0.25):
        if not 0.0 < q < 1.0:
            raise ServingError("quantile must be in (0, 1)")
        if not 0.0 < step <= 1.0:
            raise ServingError("step must be in (0, 1]")
        self.q = float(q)
        self.step = float(step)
        self.value = 0.0
        self.spread = 0.0
        self.n = 0
        self._lock = threading.Lock()

    def update(self, x: float) -> float:
        x = float(x)
        with self._lock:
            self.n += 1
            if self.n == 1:
                self.value = x
                self.spread = max(abs(x), 1e-12)
                return self.value
            self.spread += self.step * (abs(x - self.value) - self.spread)
            delta = self.step * max(self.spread, 1e-12)
            if x > self.value:
                self.value += delta * self.q
            elif x < self.value:
                self.value -= delta * (1.0 - self.q)
            return self.value


@dataclass(frozen=True)
class HealthPolicy:
    """Knobs for replica scoring, ejection, and readmission."""

    #: EWMA smoothing for error/miss/latency tracking.
    alpha: float = 0.2
    #: Score floor below which an ACTIVE replica is ejected.
    eject_below: float = 0.35
    #: Minimum samples before an ejection can trigger (cold replicas
    #: must not be ejected on their first hiccup).
    min_samples: int = 5
    #: Consecutive clean canaries required to readmit.
    readmit_after: int = 2
    #: ACTIVE replicas scoring below this are *suspect*: the prober
    #: canaries them too.  Health-ordered routing starves a
    #: once-failed replica of live traffic, so without suspect probes
    #: a blacked-out replica could linger degraded-but-ACTIVE forever;
    #: canary records drive a broken suspect down to ejection within a
    #: bounded number of cycles and pull a healthy one back up.
    suspect_below: float = 0.85
    #: Latency scale: a replica whose EWMA latency equals this loses
    #: half its latency factor.
    latency_ref_s: float = 0.25
    #: Quantile tracked per replica (feeds the adaptive hedge delay).
    quantile: float = 0.95

    def __post_init__(self):
        if not 0.0 < self.alpha <= 1.0:
            raise ServingError("alpha must be in (0, 1]")
        if not 0.0 <= self.eject_below < 1.0:
            raise ServingError("eject_below must be in [0, 1)")
        if self.min_samples < 1:
            raise ServingError("min_samples must be >= 1")
        if self.readmit_after < 1:
            raise ServingError("readmit_after must be >= 1")
        if not self.eject_below < self.suspect_below <= 1.0:
            raise ServingError(
                "suspect_below must be in (eject_below, 1]"
            )
        if self.latency_ref_s <= 0.0:
            raise ServingError("latency_ref_s must be > 0")
        if not 0.0 < self.quantile < 1.0:
            raise ServingError("quantile must be in (0, 1)")


class ReplicaHealth:
    """EWMA health score + ACTIVE/EJECTED/PROBATION state machine.

    The score is multiplicative so any single degraded dimension can
    eject on its own::

        score = (1 - err_ewma) * (1 - miss_ewma)
                * latency_ref / (latency_ref + latency_ewma)

    A healthy replica scores ~1.0; a replica failing every call decays
    toward 0 at rate ``alpha``; a replica answering cleanly but slowly
    is pulled down by the latency factor alone.
    """

    def __init__(self, policy: "HealthPolicy | None" = None, name: str = "replica"):
        self.policy = policy or HealthPolicy()
        self.name = str(name)
        self._lock = threading.Lock()
        self._err = 0.0
        self._miss = 0.0
        self._latency = 0.0
        self._n = 0
        self._state = ACTIVE
        self._streak = 0
        self.n_ejections = 0
        self.n_readmissions = 0
        #: Streaming latency quantile (hedge delay input).
        self.latency_quantile = QuantileTracker(self.policy.quantile)

    # ------------------------------------------------------------------ #

    @property
    def state(self) -> str:
        return self._state

    @property
    def active(self) -> bool:
        return self._state == ACTIVE

    @property
    def samples(self) -> int:
        return self._n

    @property
    def error_rate(self) -> float:
        return self._err

    @property
    def miss_rate(self) -> float:
        return self._miss

    @property
    def latency_ewma(self) -> float:
        return self._latency

    def _score_locked(self) -> float:
        ref = self.policy.latency_ref_s
        latency_factor = ref / (ref + self._latency)
        return (1.0 - self._err) * (1.0 - self._miss) * latency_factor

    @property
    def score(self) -> float:
        with self._lock:
            return self._score_locked()

    # ------------------------------------------------------------------ #

    def record(
        self, ok: bool, deadline_miss: bool = False, latency_s: float = 0.0
    ) -> bool:
        """Fold one observed call in; True when this call ejected us."""
        self.latency_quantile.update(latency_s)
        a = self.policy.alpha
        ejected = False
        with self._lock:
            self._n += 1
            self._err += a * ((0.0 if ok else 1.0) - self._err)
            self._miss += a * ((1.0 if deadline_miss else 0.0) - self._miss)
            self._latency += a * (float(latency_s) - self._latency)
            score = self._score_locked()
            if (
                self._state == ACTIVE
                and self._n >= self.policy.min_samples
                and score < self.policy.eject_below
            ):
                self._state = EJECTED
                self._streak = 0
                self.n_ejections += 1
                ejected = True
        if _OBS.enabled:
            m = _OBS.metrics
            m.gauge(f"fabric.health.{self.name}.score").set(score)
            if ejected:
                m.counter("fabric.health.ejections").inc()
                m.counter(f"fabric.health.{self.name}.to_{EJECTED}").inc()
        return ejected

    def eject(self) -> None:
        """Force ejection (operator action or an external signal)."""
        with self._lock:
            if self._state == ACTIVE:
                self._state = EJECTED
                self._streak = 0
                self.n_ejections += 1
        if _OBS.enabled:
            _OBS.metrics.counter("fabric.health.ejections").inc()

    def probe_outcome(self, clean: bool) -> bool:
        """Fold one canary outcome in; True when this probe readmitted.

        Clean canaries walk EJECTED → PROBATION → … → ACTIVE after
        ``readmit_after`` consecutive successes; any failed canary
        resets the streak back to EJECTED.
        """
        readmitted = False
        with self._lock:
            if self._state == ACTIVE:
                return False
            if not clean:
                self._state = EJECTED
                self._streak = 0
            else:
                self._streak += 1
                if self._streak >= self.policy.readmit_after:
                    self._readmit_locked()
                    readmitted = True
                else:
                    self._state = PROBATION
        if _OBS.enabled and readmitted:
            m = _OBS.metrics
            m.counter("fabric.health.readmissions").inc()
            m.counter(f"fabric.health.{self.name}.to_{ACTIVE}").inc()
        return readmitted

    def _readmit_locked(self) -> None:
        self._state = ACTIVE
        self._streak = 0
        self._err = 0.0
        self._miss = 0.0
        self._latency = 0.0
        self._n = 0
        self.n_readmissions += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "state": self._state,
                "score": self._score_locked(),
                "error_rate": self._err,
                "miss_rate": self._miss,
                "latency_ewma_s": self._latency,
                "latency_p95_s": self.latency_quantile.value,
                "samples": self._n,
                "ejections": self.n_ejections,
                "readmissions": self.n_readmissions,
            }


class HealthProber:
    """Background canary loop readmitting recovered replicas.

    ``groups`` is any sequence of objects exposing the probe surface of
    :class:`~repro.serving.fabric.ReplicaGroup`: a ``health`` sequence
    of :class:`ReplicaHealth`, ``canary(idx)`` returning a
    :class:`~repro.serving.server.QueryResult`, and
    ``restore_replica(idx)`` called once on readmission (breaker
    reset).  :meth:`probe_once` is public so deterministic tests can
    drive the loop by hand; :meth:`start` runs it on a daemon thread.
    """

    def __init__(self, groups, interval_s: float = 0.25, name: str = "fabric-prober"):
        if interval_s <= 0:
            raise ServingError("interval_s must be > 0")
        self.groups = tuple(groups)
        self.interval_s = float(interval_s)
        self.name = str(name)
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None
        self._lock = threading.Lock()
        self.n_cycles = 0
        self.n_probes = 0
        self.n_clean = 0
        self.n_failed = 0
        self.n_readmitted = 0

    # ------------------------------------------------------------------ #

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "HealthProber":
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name=self.name, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.probe_once()
            except Exception:  # pragma: no cover — probe loop must survive
                continue

    # ------------------------------------------------------------------ #

    def probe_once(self) -> int:
        """One canary sweep over every non-ACTIVE or *suspect* replica.

        Suspect = ACTIVE but scoring below the policy's
        ``suspect_below``: routing already steers live traffic away
        from such a replica, so only canaries can establish whether it
        is actually broken (the failed canaries recorded by the group
        decay it to ejection) or fine (clean canaries restore its
        score).  Returns the number of probes issued this cycle.
        """
        with self._lock:
            self.n_cycles += 1
        probed = 0
        for group in self.groups:
            for idx, health in enumerate(group.health):
                if health.active and (
                    health.score >= health.policy.suspect_below
                ):
                    continue
                probed += 1
                try:
                    result = group.canary(idx)
                    clean = bool(getattr(result, "ok", False)) and not getattr(
                        result, "tier_errors", None
                    )
                except Exception:
                    clean = False
                with self._lock:
                    self.n_probes += 1
                    if clean:
                        self.n_clean += 1
                    else:
                        self.n_failed += 1
                if _OBS.enabled:
                    m = _OBS.metrics
                    m.counter("fabric.probe.probes").inc()
                    m.counter(
                        "fabric.probe.clean" if clean else "fabric.probe.failed"
                    ).inc()
                if health.probe_outcome(clean):
                    group.restore_replica(idx)
                    with self._lock:
                        self.n_readmitted += 1
        return probed

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "cycles": self.n_cycles,
                "probes": self.n_probes,
                "clean": self.n_clean,
                "failed": self.n_failed,
                "readmitted": self.n_readmitted,
                "running": self.running,
            }
