"""The serving fallback chain: four independent ways to answer a query.

A resilient server never lets one broken backend take down the whole
query surface.  Discrete posterior queries walk a chain of tiers, each
strictly cheaper in assumptions than the one before:

1. ``compiled-einsum`` — the compile-once einsum kernel
   (:class:`~repro.bn.inference.engine.CompiledDiscreteModel.query`);
2. ``factor-sweep`` — the plan-guided factor-algebra elimination sweep
   (:meth:`~repro.bn.inference.engine.CompiledDiscreteModel.query_via_sweep`),
   an independent numeric path through the same plans;
3. ``likelihood-weighting`` — seeded importance sampling straight off
   the CPDs, needing no compiled artifacts at all;
4. ``cached-prior`` — evidence-free marginals captured at chain
   construction (exact when the engine was healthy at startup, forward-
   sampled otherwise).  Always answers; marked ``approximate``.

Every answer records which tier produced it and what the earlier tiers'
failures were, so operators can see degradation instead of silently
eating it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.bn.inference.sampling import likelihood_weighting
from repro.exceptions import InferenceError, ServingError
from repro.utils.rng import ensure_rng

TIER_COMPILED = "compiled-einsum"
TIER_SWEEP = "factor-sweep"
TIER_SAMPLING = "likelihood-weighting"
TIER_PRIOR = "cached-prior"

#: Walk order; TIER_PRIOR is terminal and cannot fail.
CHAIN = (TIER_COMPILED, TIER_SWEEP, TIER_SAMPLING, TIER_PRIOR)


@dataclass
class TierAnswer:
    """One answered query plus its provenance through the chain."""

    variables: tuple
    values: np.ndarray           # normalized pmf, axes follow `variables`
    tier: str                    # which tier answered
    tier_errors: dict = field(default_factory=dict)  # tier -> error string
    approximate: bool = False    # sampling / prior answers are approximate

    @property
    def degraded(self) -> bool:
        return self.tier != TIER_COMPILED


class FallbackChain:
    """Tiered discrete-query execution over one compiled network."""

    def __init__(
        self,
        network,
        rng=None,
        n_samples: int = 1500,
        breakers: "Mapping[str, object] | None" = None,
    ):
        if n_samples < 1:
            raise ServingError("n_samples must be >= 1")
        self.network = network
        self.engine = network.compiled()
        self.n_samples = int(n_samples)
        self.rng = ensure_rng(rng)
        #: Optional per-tier circuit breakers ({tier: CircuitBreaker});
        #: the terminal prior tier is never broken.
        self.breakers = dict(breakers or {})
        self._cards = self.engine.cardinalities
        self._priors = self._capture_priors()

    # ------------------------------------------------------------------ #

    def _capture_priors(self) -> dict:
        """Per-node evidence-free marginals, captured once at startup.

        Exact engine marginals when the engine is healthy (the normal
        case: the chain is built right after the model is); a seeded
        forward-sampling histogram if even that fails, so the terminal
        tier exists no matter what.
        """
        priors: dict[str, np.ndarray] = {}
        pending = list(self.engine.nodes)
        for node in list(pending):
            try:
                priors[node] = self.engine.prior(node).values
                pending.remove(node)
            except Exception:  # engine already broken at startup
                break
        if pending:
            samples = self.network.sample(max(self.n_samples, 500), self.rng)
            for node in pending:
                counts = np.bincount(
                    np.asarray(samples[node], dtype=int),
                    minlength=self._cards[node],
                ).astype(float)
                priors[node] = counts / counts.sum()
        return priors

    def prior(self, variables: Sequence[str]) -> np.ndarray:
        """Cached prior over ``variables`` (product of marginals for
        joint queries — the terminal tier trades exactness for
        availability)."""
        pmf = self._priors[str(variables[0])]
        for v in variables[1:]:
            pmf = np.multiply.outer(pmf, self._priors[str(v)])
        return pmf

    # ------------------------------------------------------------------ #

    def _sampling_pmf(
        self, variables: tuple, evidence: Mapping[str, int]
    ) -> np.ndarray:
        samples, weights = likelihood_weighting(
            self.network, evidence, n=self.n_samples, rng=self.rng
        )
        shape = tuple(self._cards[v] for v in variables)
        pmf = np.zeros(shape)
        idx = tuple(np.asarray(samples[v], dtype=int) for v in variables)
        np.add.at(pmf, idx, weights)
        total = pmf.sum()
        if total <= 0:
            raise InferenceError("all importance weights are zero")
        return pmf / total

    def _attempt(self, tier: str, variables: tuple, evidence: dict) -> np.ndarray:
        if tier == TIER_COMPILED:
            return self.engine.query(variables, evidence).values
        if tier == TIER_SWEEP:
            return self.engine.query_via_sweep(variables, evidence).values
        if tier == TIER_SAMPLING:
            return self._sampling_pmf(variables, evidence)
        raise ServingError(f"unknown tier {tier!r}")  # pragma: no cover

    def answer(
        self,
        variables: Sequence[str],
        evidence: "Mapping[str, int] | None" = None,
        deadline: "float | None" = None,
    ) -> TierAnswer:
        """Walk the chain until a tier answers.

        ``evidence`` maps variable → bin state (already validated by the
        guard layer); ``deadline`` is a ``time.monotonic()`` timestamp —
        once passed, remaining non-terminal tiers are skipped and the
        cached prior answers immediately.

        Unknown variables are a *caller* bug, not a backend fault, and
        raise :class:`InferenceError` outright.
        """
        variables = tuple(str(v) for v in variables)
        unknown = [v for v in variables if v not in self._cards]
        if not variables or unknown:
            raise InferenceError(
                f"bad query variables {list(variables)} (unknown: {unknown})"
            )
        evidence = {str(k): int(v) for k, v in (evidence or {}).items()}
        errors: dict[str, str] = {}
        for tier in (TIER_COMPILED, TIER_SWEEP, TIER_SAMPLING):
            if deadline is not None and time.monotonic() > deadline:
                errors[tier] = "deadline exceeded"
                continue
            breaker = self.breakers.get(tier)
            if breaker is not None and not breaker.allow():
                errors[tier] = "circuit open"
                continue
            try:
                values = self._attempt(tier, variables, evidence)
            except Exception as exc:
                errors[tier] = f"{type(exc).__name__}: {exc}"
                if breaker is not None:
                    breaker.record_failure()
                continue
            if breaker is not None:
                breaker.record_success()
            return TierAnswer(
                variables=variables,
                values=values,
                tier=tier,
                tier_errors=errors,
                approximate=tier == TIER_SAMPLING,
            )
        return TierAnswer(
            variables=variables,
            values=self.prior(variables),
            tier=TIER_PRIOR,
            tier_errors=errors,
            approximate=True,
        )
