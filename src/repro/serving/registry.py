"""Versioned model registry on top of :mod:`repro.core.persistence`.

An autonomic manager rebuilds its model every ``T_CON``; swapping the
live model in place leaves nothing to fall back to when a rebuild turns
out to be bad.  The registry gives model churn a lifecycle:

- **publish** — atomically write the bundle (temp file + rename) under a
  monotonic version id and record it in the manifest;
- **activate** — point the serving path at one published version;
- **rollback** — one call back to the most recent *healthy* predecessor,
  marking the abandoned version unhealthy with a reason;
- **retention** — keep the last N bundles (the active version and its
  healthy predecessor are never pruned), so long-running deployments do
  not grow disk without bound.

The manifest itself is plain JSON, rewritten atomically on every
mutation; a corrupt manifest or bundle surfaces as
:class:`~repro.exceptions.DataError` naming the offending file.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.persistence import (
    SCHEMA_VERSION,
    load_model,
    model_to_dict,
    write_json_atomic,
)
from repro.exceptions import DataError, ServingError

_MANIFEST = "MANIFEST.json"


@dataclass
class VersionInfo:
    """One published model version's manifest record."""

    version: int
    file: str
    model_kind: str
    healthy: bool = True
    reason: "str | None" = None
    published_at: float = 0.0
    metadata: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "file": self.file,
            "model_kind": self.model_kind,
            "healthy": self.healthy,
            "reason": self.reason,
            "published_at": self.published_at,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, spec: dict) -> "VersionInfo":
        return cls(
            version=int(spec["version"]),
            file=str(spec["file"]),
            model_kind=str(spec["model_kind"]),
            healthy=bool(spec["healthy"]),
            reason=spec.get("reason"),
            published_at=float(spec.get("published_at", 0.0)),
            metadata=dict(spec.get("metadata", {})),
        )


class ModelRegistry:
    """Filesystem-backed versioned store of model bundles."""

    def __init__(self, root: str, keep: int = 5):
        if keep < 2:
            raise ServingError("keep must be >= 2 (active + rollback target)")
        self.root = str(root)
        self.keep = int(keep)
        os.makedirs(self.root, exist_ok=True)
        self._manifest_path = os.path.join(self.root, _MANIFEST)
        self._load_manifest()

    # ------------------------------------------------------------------ #
    # Manifest I/O
    # ------------------------------------------------------------------ #

    def _load_manifest(self) -> None:
        if not os.path.exists(self._manifest_path):
            self._next_version = 1
            self._active: "int | None" = None
            self._versions: dict[int, VersionInfo] = {}
            return
        with open(self._manifest_path) as fh:
            try:
                spec = json.load(fh)
            except json.JSONDecodeError as exc:
                raise DataError(
                    f"registry manifest {self._manifest_path!r} is corrupt: {exc}"
                ) from exc
        try:
            if spec["schema_version"] != SCHEMA_VERSION:
                raise DataError(
                    f"registry manifest schema_version "
                    f"{spec['schema_version']!r} unsupported "
                    f"(expected {SCHEMA_VERSION})"
                )
            self._next_version = int(spec["next_version"])
            self._active = spec["active"]
            self._versions = {
                int(v["version"]): VersionInfo.from_dict(v)
                for v in spec["versions"]
            }
        except KeyError as exc:
            raise DataError(
                f"registry manifest {self._manifest_path!r} truncated: "
                f"missing key {exc.args[0]!r}"
            ) from exc

    def _write_manifest(self) -> None:
        write_json_atomic(
            self._manifest_path,
            {
                "schema_version": SCHEMA_VERSION,
                "next_version": self._next_version,
                "active": self._active,
                "versions": [
                    self._versions[v].to_dict() for v in sorted(self._versions)
                ],
            },
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def active_version(self) -> "int | None":
        return self._active

    def versions(self) -> "list[VersionInfo]":
        return [self._versions[v] for v in sorted(self._versions)]

    def info(self, version: int) -> VersionInfo:
        try:
            return self._versions[int(version)]
        except KeyError:
            raise ServingError(f"unknown registry version {version}") from None

    def previous_healthy(self) -> "int | None":
        """Most recent healthy version strictly older than the active one."""
        if self._active is None:
            return None
        older = [
            v
            for v in sorted(self._versions)
            if v < self._active and self._versions[v].healthy
        ]
        return older[-1] if older else None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def publish(
        self, model, *, activate: bool = True, metadata: "dict | None" = None
    ) -> int:
        """Atomically persist ``model`` as the next version.

        The bundle is fully written (temp file + rename) before the
        manifest mentions it, so a crash mid-publish leaves the registry
        exactly as it was.
        """
        version = self._next_version
        fname = f"v{version:06d}.json"
        write_json_atomic(os.path.join(self.root, fname), model_to_dict(model))
        self._versions[version] = VersionInfo(
            version=version,
            file=fname,
            model_kind=model.report.model_kind,
            published_at=time.time(),
            metadata=dict(metadata or {}),
        )
        self._next_version = version + 1
        if activate:
            self._active = version
        self._prune()
        self._write_manifest()
        return version

    def activate(self, version: int) -> None:
        info = self.info(version)
        if not info.healthy:
            raise ServingError(
                f"refusing to activate unhealthy version {version} "
                f"({info.reason})"
            )
        self._active = int(version)
        self._write_manifest()

    def mark_unhealthy(self, version: int, reason: str) -> None:
        info = self.info(version)
        info.healthy = False
        info.reason = str(reason)
        self._write_manifest()

    def rollback(self, reason: str = "rollback requested") -> int:
        """One-call rollback: abandon the active version (marked
        unhealthy with ``reason``) and activate its most recent healthy
        predecessor.  Returns the version now active."""
        if self._active is None:
            raise ServingError("nothing to roll back: no active version")
        target = self.previous_healthy()
        if target is None:
            raise ServingError(
                f"cannot roll back from version {self._active}: "
                f"no earlier healthy version exists"
            )
        abandoned = self._active
        self._versions[abandoned].healthy = False
        self._versions[abandoned].reason = str(reason)
        self._active = target
        self._write_manifest()
        return target

    def load(self, version: "int | None" = None):
        """Load a bundle (the active version by default) as a usable model."""
        if version is None:
            version = self._active
        if version is None:
            raise ServingError("registry has no active version to load")
        info = self.info(version)
        path = os.path.join(self.root, info.file)
        if not os.path.exists(path):
            raise DataError(
                f"registry version {version} bundle missing on disk: {path!r}"
            )
        return load_model(path)

    # ------------------------------------------------------------------ #

    def _prune(self) -> None:
        """Drop all but the newest ``keep`` versions; the active version
        and its healthy rollback target always survive."""
        protected = {self._active, self.previous_healthy()}
        candidates = sorted(self._versions)
        excess = [v for v in candidates if v not in protected]
        n_drop = len(self._versions) - self.keep
        for v in excess[: max(0, n_drop)]:
            info = self._versions.pop(v)
            path = os.path.join(self.root, info.file)
            if os.path.exists(path):
                os.remove(path)
