"""Sharded multi-tenant serving fabric with dynamic batching.

One :class:`~repro.serving.server.ModelServer` guards one model bundle;
the paper's autonomic story ("millions of users", model queries *inside*
the control loop) needs a front-end that hosts many scenarios/tenants at
once and turns the engine's ~250× batched-inference advantage into
real-traffic throughput.  This module is that front-end:

- :class:`ShardRouter` — hosts N tenants over a fixed ring of
  :class:`~repro.serving.server.ModelServer` shards.  The tenant→shard
  mapping is **consistent** (a CRC32 of the tenant name modulo the shard
  count — stable across processes and restarts, independent of
  registration order).  Every tenant carries its own budget: a seeded
  :class:`~repro.serving.breaker.AdmissionController` and a per-tenant
  :class:`~repro.serving.breaker.CircuitBreaker`, plus a per-tenant
  :class:`~repro.serving.server.ServerStats` rollup — one tenant's storm
  or poisoned traffic is shed at *its* budget and never bleeds into its
  neighbours' accounting.
- :class:`DynamicBatcher` — a thread-safe request queue that coalesces
  concurrent single ``query`` calls sharing an evidence signature (and
  shard) into ``query_batch`` calls.  Buckets flush when they reach
  ``max_batch`` rows or age past ``max_wait_us`` (deadline-aware: a
  background flusher sweeps aged buckets so no caller waits longer than
  roughly one flush interval).  When a shard's compiled batch tier is
  tripped, the batcher **falls back to singles** — queueing behind a
  broken kernel would only add latency to an already-degraded path.
- :class:`ServingFabric` — the facade the CLI and the load harness
  drive: single queries through the batcher, bulk columnar traffic
  straight through the router's
  :meth:`~repro.serving.server.ModelServer.query_batch_columns` lane.

All fabric counters/gauges flow into :mod:`repro.obs` under the
``fabric.*`` prefix (and therefore out of the Prometheus exporter):
queue depth, batch occupancy, coalesced rows vs flushes (the coalesce
ratio), single-path bypasses, and per-tenant shed counts; per-tenant
breakers publish the standard ``serving.breaker.tenant.<name>.*``
transition counters and ``open`` gauges.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.exceptions import ServingError
from repro.obs.runtime import OBS as _OBS
from repro.serving.breaker import CLOSED, AdmissionController, CircuitBreaker
from repro.serving.fallback import TIER_COMPILED
from repro.serving.server import (
    STATUS_FAILED,
    STATUS_SHED,
    ColumnarBatchResult,
    ModelServer,
    QueryResult,
    ServerStats,
)


def shard_index(tenant: str, n_shards: int) -> int:
    """Consistent tenant→shard mapping: CRC32 mod shard count.

    Stable across processes, restarts, and registration order — the
    property that lets a fleet of routers agree on placement without
    coordination.
    """
    if n_shards < 1:
        raise ServingError("n_shards must be >= 1")
    return zlib.crc32(str(tenant).encode("utf-8")) % n_shards


@dataclass
class TenantState:
    """One tenant's budget and accounting inside the fabric."""

    name: str
    shard: int
    admission: "AdmissionController | None"
    breaker: CircuitBreaker
    stats: ServerStats = field(default_factory=ServerStats)

    def snapshot(self) -> dict:
        info = {
            "shard": self.shard,
            "breaker_state": self.breaker.state,
            "breaker_trips": self.breaker.n_trips,
            "stats": self.stats.as_dict(),
        }
        if self.admission is not None:
            info["admission"] = {
                "overload_fraction": self.admission.overload_fraction,
                "n_admitted": self.admission.n_admitted,
                "n_shed": self.admission.n_shed,
            }
        return info


class ShardRouter:
    """Multi-tenant front door over a fixed ring of model servers.

    Tenants are registered with :meth:`add_tenant` (or lazily on first
    use when ``auto_register`` is on) and every query flows through
    that tenant's budget *before* touching the shard:

    1. the per-tenant circuit breaker (trips on sustained failures /
       deadline overruns of this tenant's own traffic, so a tenant whose
       queries keep failing stops burning shard capacity);
    2. the per-tenant admission controller (seeded, deterministic
       shedding once the tenant's recent overload fraction crosses its
       threshold);
    3. the shard's own :class:`ModelServer` guards (its admission,
       per-tier breakers, fallback chain).

    Every outcome is tallied in the tenant's own :class:`ServerStats`
    rollup in addition to the shard server's stats.
    """

    def __init__(
        self,
        shards: "Sequence[ModelServer]",
        *,
        auto_register: bool = True,
        tenant_budget: "Callable[[str], AdmissionController | None] | None" = None,
        breaker_threshold: int = 5,
        breaker_cooldown: int = 50,
    ):
        if not shards:
            raise ServingError("ShardRouter needs at least one shard")
        self.shards: tuple[ModelServer, ...] = tuple(shards)
        self.auto_register = bool(auto_register)
        self._tenant_budget = tenant_budget
        self._breaker_threshold = int(breaker_threshold)
        self._breaker_cooldown = int(breaker_cooldown)
        self._tenants: dict[str, TenantState] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Tenant lifecycle
    # ------------------------------------------------------------------ #

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def tenants(self) -> "list[str]":
        with self._lock:
            return sorted(self._tenants)

    def shard_of(self, tenant: str) -> int:
        return shard_index(tenant, len(self.shards))

    def server_for(self, tenant: str) -> ModelServer:
        return self.shards[self.shard_of(tenant)]

    def add_tenant(
        self,
        name: str,
        *,
        admission: "AdmissionController | None" = None,
        breaker: "CircuitBreaker | None" = None,
    ) -> TenantState:
        """Register ``name`` with its budgets (idempotent per name)."""
        name = str(name)
        with self._lock:
            state = self._tenants.get(name)
            if state is not None:
                return state
            if admission is None and self._tenant_budget is not None:
                admission = self._tenant_budget(name)
            if breaker is None:
                breaker = CircuitBreaker(
                    self._breaker_threshold,
                    self._breaker_cooldown,
                    name=f"tenant.{name}",
                )
            state = TenantState(
                name=name,
                shard=self.shard_of(name),
                admission=admission,
                breaker=breaker,
            )
            self._tenants[name] = state
            return state

    def tenant_state(self, tenant: str) -> TenantState:
        state = self._tenants.get(str(tenant))
        if state is None:
            if not self.auto_register:
                raise ServingError(f"unknown tenant {tenant!r}")
            state = self.add_tenant(tenant)
        return state

    # ------------------------------------------------------------------ #
    # Budget gate
    # ------------------------------------------------------------------ #

    def _gate(self, state: TenantState) -> "QueryResult | None":
        """Apply the tenant's breaker + admission; a result means shed."""
        if not state.breaker.allow():
            result = QueryResult(
                status=STATUS_SHED,
                reasons=(f"tenant {state.name!r} circuit open",),
            )
            state.stats._count(result)
            self._tenant_shed(state, "breaker")
            return result
        if state.admission is not None and not state.admission.admit():
            # The breaker probe above was spent on a query that never
            # ran; report it as a non-failure so a half-open tenant is
            # not re-tripped by its own admission shedding.
            state.breaker.record_success()
            result = QueryResult(
                status=STATUS_SHED,
                reasons=(f"tenant {state.name!r} admission: over budget",),
            )
            state.stats._count(result)
            self._tenant_shed(state, "admission")
            return result
        return None

    @staticmethod
    def _tenant_shed(state: TenantState, why: str) -> None:
        if _OBS.enabled:
            m = _OBS.metrics
            m.counter("fabric.tenant_shed").inc()
            m.counter(f"fabric.tenant.{state.name}.shed_{why}").inc()

    def _settle(self, state: TenantState, result: QueryResult) -> QueryResult:
        """Tenant-side accounting for one completed query."""
        overload = result.deadline_exceeded or result.status == STATUS_FAILED
        if overload:
            state.breaker.record_failure()
        else:
            state.breaker.record_success()
        if state.admission is not None:
            state.admission.record(overload)
        state.stats._count(result)
        return result

    # ------------------------------------------------------------------ #
    # Query surface
    # ------------------------------------------------------------------ #

    def query(
        self,
        tenant: str,
        variables: Sequence[str],
        evidence: "Mapping | None" = None,
        binned: bool = False,
    ) -> QueryResult:
        """One guarded query under ``tenant``'s budget."""
        state = self.tenant_state(tenant)
        shed = self._gate(state)
        if shed is not None:
            return shed
        result = self.shards[state.shard].query(
            variables, evidence, binned=binned
        )
        return self._settle(state, result)

    def query_batch(
        self,
        tenant: str,
        variables: Sequence[str],
        rows: "Sequence[Mapping]",
        binned: bool = False,
    ) -> "list[QueryResult]":
        """Row-wise guarded batch under ``tenant``'s budget."""
        if not rows:
            return []
        state = self.tenant_state(tenant)
        shed = self._gate(state)
        if shed is not None:
            out = []
            for _ in range(len(rows) - 1):
                extra = QueryResult(status=STATUS_SHED, reasons=shed.reasons)
                state.stats._count(extra)
                out.append(extra)
            return [shed] + out
        results = self.shards[state.shard].query_batch(
            variables, rows, binned=binned
        )
        for r in results:
            self._settle(state, r)
        return results

    def query_batch_columns(
        self,
        tenant: str,
        variables: Sequence[str],
        columns: "Mapping[str, Sequence[int]]",
    ) -> ColumnarBatchResult:
        """Columnar bulk lane under ``tenant``'s budget (binned states)."""
        state = self.tenant_state(tenant)
        shed = self._gate(state)
        if shed is not None:
            n_rows = 0
            for col in columns.values():
                n_rows = max(n_rows, len(col))
            result = ColumnarBatchResult(
                status=STATUS_SHED, n_rows=n_rows, reasons=shed.reasons
            )
            # _gate already counted one row; count the remainder so the
            # tenant rollup stays row-equivalent.
            if n_rows > 1:
                remainder = ColumnarBatchResult(
                    status=STATUS_SHED, n_rows=n_rows - 1
                )
                state.stats._count_columnar(remainder)
            return result
        result = self.shards[state.shard].query_batch_columns(
            variables, columns
        )
        overload = result.deadline_exceeded or result.status == STATUS_FAILED
        if overload:
            state.breaker.record_failure()
        else:
            state.breaker.record_success()
        if state.admission is not None:
            state.admission.record(overload)
        state.stats._count_columnar(result)
        return result

    # ------------------------------------------------------------------ #

    def refresh(self) -> "list[int | None]":
        """Follow each registry-backed shard's active version."""
        return [shard.refresh() for shard in self.shards]

    def stats(self) -> dict:
        """Rollup: per-shard server stats + per-tenant budget state."""
        with self._lock:
            tenants = dict(self._tenants)
        return {
            "n_shards": len(self.shards),
            "shards": [
                {
                    "stats": shard.stats.as_dict(),
                    "version": shard.version,
                    "breakers": {
                        tier: b.state for tier, b in shard.breakers.items()
                    },
                }
                for shard in self.shards
            ],
            "tenants": {
                name: state.snapshot() for name, state in sorted(tenants.items())
            },
        }


# --------------------------------------------------------------------- #
# Dynamic batching
# --------------------------------------------------------------------- #


class PendingQuery:
    """A submitted single query awaiting its coalesced batch."""

    __slots__ = ("tenant", "evidence", "submitted_at", "_event", "_result")

    def __init__(self, tenant: str, evidence: dict):
        self.tenant = tenant
        self.evidence = evidence
        self.submitted_at = time.monotonic()
        self._event = threading.Event()
        self._result: "QueryResult | None" = None

    def _resolve(self, result: QueryResult) -> None:
        self._result = result
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: "float | None" = None) -> QueryResult:
        """Block until the coalesced batch answers (or ``timeout``)."""
        if not self._event.wait(timeout):
            raise ServingError(
                f"pending query for tenant {self.tenant!r} timed out "
                f"after {timeout}s"
            )
        assert self._result is not None
        return self._result


class _Bucket:
    """Pending queries sharing (shard, variables, signature, binned)."""

    __slots__ = ("key", "entries", "created_at")

    def __init__(self, key: tuple):
        self.key = key
        self.entries: "list[PendingQuery]" = []
        self.created_at = time.monotonic()


class DynamicBatcher:
    """Coalesce concurrent single queries into ``query_batch`` calls.

    Callers :meth:`submit` (non-blocking, returns a
    :class:`PendingQuery`) or :meth:`query` (submit + wait).  Requests
    are bucketed by ``(shard, variables, evidence signature, binned)``
    — the compiled batch signature — so one flush answers every waiter
    with a single vectorized kernel pass.  Buckets flush when

    - they reach ``max_batch`` rows (flushed inline on the submitting
      thread: the batch is full, waiting buys nothing), or
    - the background flusher finds them older than ``max_wait_us``
      (deadline-aware: the oldest waiter bounds the sweep).

    Tenant budgets are enforced at submit time (shed requests never
    enqueue) and tenant accounting at completion time, so coalescing
    *across* tenants on the same shard is safe: the rows share one
    kernel call while each tenant's rollup sees exactly its own rows.

    When the target shard's compiled batch tier is tripped, new
    requests **bypass the queue** and run as singles through the
    router — queueing behind a broken kernel would add wait latency to
    an already-degraded path (``fabric.batcher.bypass`` counts these).
    """

    def __init__(
        self,
        router: ShardRouter,
        *,
        max_batch: int = 64,
        max_wait_us: float = 2000.0,
        binned: bool = False,
    ):
        if max_batch < 1:
            raise ServingError("max_batch must be >= 1")
        if max_wait_us <= 0:
            raise ServingError("max_wait_us must be > 0")
        self.router = router
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_us) / 1e6
        self.binned = bool(binned)
        self._lock = threading.Lock()
        self._buckets: "dict[tuple, _Bucket]" = {}
        self._depth = 0
        # Plain counters (readable without obs): flush accounting.
        self.n_submitted = 0
        self.n_flushes = 0
        self.n_coalesced_rows = 0
        self.n_bypass = 0
        self._closed = False
        self._flusher = threading.Thread(
            target=self._flush_loop, name="fabric-batcher", daemon=True
        )
        self._flusher.start()

    # ------------------------------------------------------------------ #

    @property
    def coalesce_ratio(self) -> float:
        """Mean rows answered per kernel flush (>1 means coalescing)."""
        return self.n_coalesced_rows / self.n_flushes if self.n_flushes else 0.0

    @property
    def queue_depth(self) -> int:
        return self._depth

    def submit(
        self,
        tenant: str,
        variables: Sequence[str],
        evidence: "Mapping | None" = None,
        binned: "bool | None" = None,
    ) -> PendingQuery:
        """Enqueue one query; returns a handle to wait on.

        Budget-shed and bypassed requests come back already resolved.
        """
        if self._closed:
            raise ServingError("batcher is closed")
        binned = self.binned if binned is None else bool(binned)
        state = self.router.tenant_state(tenant)
        evidence = dict(evidence or {})
        pending = PendingQuery(str(tenant), evidence)
        shed = self.router._gate(state)
        if shed is not None:
            pending._resolve(shed)
            return pending
        shard_server = self.router.shards[state.shard]
        chain = shard_server.chain
        if (
            chain is None
            or shard_server.breakers[TIER_COMPILED].state != CLOSED
        ):
            # Batch tier tripped (or non-discrete model): fall back to a
            # single query now instead of queueing behind a broken tier.
            self.n_bypass += 1
            if _OBS.enabled:
                _OBS.metrics.counter("fabric.batcher.bypass").inc()
            result = shard_server.query(variables, evidence, binned=binned)
            pending._resolve(self.router._settle(state, result))
            return pending
        key = (
            state.shard,
            tuple(map(str, variables)),
            tuple(sorted(map(str, evidence))),
            binned,
        )
        full: "_Bucket | None" = None
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = self._buckets[key] = _Bucket(key)
            bucket.entries.append(pending)
            self.n_submitted += 1
            self._depth += 1
            if len(bucket.entries) >= self.max_batch:
                full = self._buckets.pop(key)
        if _OBS.enabled:
            _OBS.metrics.gauge("fabric.batcher.queue_depth").set(self._depth)
        if full is not None:
            self._flush_bucket(full)
        return pending

    def query(
        self,
        tenant: str,
        variables: Sequence[str],
        evidence: "Mapping | None" = None,
        binned: "bool | None" = None,
        timeout: "float | None" = None,
    ) -> QueryResult:
        """Submit and wait: a drop-in, coalescing ``router.query``."""
        pending = self.submit(tenant, variables, evidence, binned=binned)
        if timeout is None:
            # Generous default: several flush intervals plus kernel time.
            timeout = max(1.0, 50.0 * self.max_wait_s)
        return pending.result(timeout)

    def flush(self) -> int:
        """Flush every pending bucket now; returns rows flushed."""
        with self._lock:
            buckets = list(self._buckets.values())
            self._buckets.clear()
        flushed = 0
        for bucket in buckets:
            flushed += len(bucket.entries)
            self._flush_bucket(bucket)
        return flushed

    def close(self) -> None:
        """Stop the flusher and drain everything still queued."""
        self._closed = True
        self.flush()

    def __enter__(self) -> "DynamicBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #

    def _flush_loop(self) -> None:
        interval = max(self.max_wait_s / 2.0, 1e-4)
        while not self._closed:
            time.sleep(interval)
            now = time.monotonic()
            aged: "list[_Bucket]" = []
            with self._lock:
                for key in list(self._buckets):
                    bucket = self._buckets[key]
                    oldest = (
                        bucket.entries[0].submitted_at
                        if bucket.entries
                        else bucket.created_at
                    )
                    if now - oldest >= self.max_wait_s:
                        aged.append(self._buckets.pop(key))
            for bucket in aged:
                try:
                    self._flush_bucket(bucket)
                except Exception:  # pragma: no cover - defensive: resolve all
                    continue

    def _flush_bucket(self, bucket: _Bucket) -> None:
        entries = bucket.entries
        if not entries:
            return
        shard_idx, variables, _signature, binned = bucket.key
        shard_server = self.router.shards[shard_idx]
        with self._lock:
            self._depth -= len(entries)
            self.n_flushes += 1
            self.n_coalesced_rows += len(entries)
        if _OBS.enabled:
            m = _OBS.metrics
            m.counter("fabric.batcher.flushes").inc()
            m.counter("fabric.batcher.coalesced_rows").inc(len(entries))
            m.histogram(
                "fabric.batcher.occupancy",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
            ).observe(len(entries))
            m.gauge("fabric.batcher.queue_depth").set(self._depth)
        try:
            results = shard_server.query_batch(
                variables, [p.evidence for p in entries], binned=binned
            )
        except Exception as exc:  # defensive: waiters must always wake
            error = f"{type(exc).__name__}: {exc}"
            for pending in entries:
                state = self.router.tenant_state(pending.tenant)
                failed = QueryResult(
                    status=STATUS_FAILED, tier_errors={"batcher": error}
                )
                pending._resolve(self.router._settle(state, failed))
            return
        for pending, result in zip(entries, results):
            state = self.router.tenant_state(pending.tenant)
            pending._resolve(self.router._settle(state, result))


# --------------------------------------------------------------------- #
# Facade
# --------------------------------------------------------------------- #


class ServingFabric:
    """Router + batcher, bundled for the CLI and the load harness."""

    def __init__(
        self,
        shards: "Sequence[ModelServer]",
        *,
        max_batch: int = 64,
        max_wait_us: float = 2000.0,
        binned: bool = False,
        auto_register: bool = True,
        tenant_budget: "Callable[[str], AdmissionController | None] | None" = None,
        breaker_threshold: int = 5,
        breaker_cooldown: int = 50,
    ):
        self.router = ShardRouter(
            shards,
            auto_register=auto_register,
            tenant_budget=tenant_budget,
            breaker_threshold=breaker_threshold,
            breaker_cooldown=breaker_cooldown,
        )
        self.batcher = DynamicBatcher(
            self.router,
            max_batch=max_batch,
            max_wait_us=max_wait_us,
            binned=binned,
        )

    # Single queries coalesce through the batcher.
    def query(self, tenant, variables, evidence=None, binned=None, timeout=None):
        return self.batcher.query(
            tenant, variables, evidence, binned=binned, timeout=timeout
        )

    def submit(self, tenant, variables, evidence=None, binned=None):
        return self.batcher.submit(tenant, variables, evidence, binned=binned)

    # Bulk traffic goes straight through the router.
    def query_batch(self, tenant, variables, rows, binned=False):
        return self.router.query_batch(tenant, variables, rows, binned=binned)

    def query_batch_columns(self, tenant, variables, columns):
        return self.router.query_batch_columns(tenant, variables, columns)

    def add_tenant(self, name, **kwargs):
        return self.router.add_tenant(name, **kwargs)

    def stats(self) -> dict:
        out = self.router.stats()
        out["batcher"] = {
            "submitted": self.batcher.n_submitted,
            "flushes": self.batcher.n_flushes,
            "coalesced_rows": self.batcher.n_coalesced_rows,
            "coalesce_ratio": self.batcher.coalesce_ratio,
            "bypass": self.batcher.n_bypass,
            "queue_depth": self.batcher.queue_depth,
        }
        return out

    def close(self) -> None:
        self.batcher.close()

    def __enter__(self) -> "ServingFabric":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def build_fabric(sources: Sequence, **kwargs) -> ServingFabric:
    """One shard per source (a model object or a ``ModelRegistry``)."""
    server_kwargs = {
        k: kwargs.pop(k)
        for k in ("deadline_seconds", "n_fallback_samples", "rng")
        if k in kwargs
    }
    shards = [ModelServer(source, **server_kwargs) for source in sources]
    return ServingFabric(shards, **kwargs)
