"""Sharded multi-tenant serving fabric with dynamic batching.

One :class:`~repro.serving.server.ModelServer` guards one model bundle;
the paper's autonomic story ("millions of users", model queries *inside*
the control loop) needs a front-end that hosts many scenarios/tenants at
once and turns the engine's ~250× batched-inference advantage into
real-traffic throughput.  This module is that front-end:

- :class:`ShardRouter` — hosts N tenants over a fixed ring of
  :class:`~repro.serving.server.ModelServer` shards.  The tenant→shard
  mapping is **consistent** (a CRC32 of the tenant name modulo the shard
  count — stable across processes and restarts, independent of
  registration order).  Every tenant carries its own budget: a seeded
  :class:`~repro.serving.breaker.AdmissionController` and a per-tenant
  :class:`~repro.serving.breaker.CircuitBreaker`, plus a per-tenant
  :class:`~repro.serving.server.ServerStats` rollup — one tenant's storm
  or poisoned traffic is shed at *its* budget and never bleeds into its
  neighbours' accounting.
- :class:`DynamicBatcher` — a thread-safe request queue that coalesces
  concurrent single ``query`` calls sharing an evidence signature (and
  shard) into ``query_batch`` calls.  Buckets flush when they reach
  ``max_batch`` rows or age past ``max_wait_us`` (deadline-aware: a
  background flusher sweeps aged buckets so no caller waits longer than
  roughly one flush interval).  When a shard's compiled batch tier is
  tripped, the batcher **falls back to singles** — queueing behind a
  broken kernel would only add latency to an already-degraded path.
- :class:`ReplicaGroup` — one ring slot hosting ``n`` replicas of the
  same model behind the :class:`ModelServer` surface: health-ordered
  routing (:mod:`repro.serving.health`), failover down the health
  order on outright failure, optional p95-adaptive **hedged requests**
  against the next-healthiest sibling, and per-replica fault injection
  (:mod:`repro.serving.faults`) for chaos drills.
- :class:`ServingFabric` — the facade the CLI and the load harness
  drive: single queries through the batcher, bulk columnar traffic
  straight through the router's
  :meth:`~repro.serving.server.ModelServer.query_batch_columns` lane,
  plus a background :class:`~repro.serving.health.HealthProber` that
  canaries ejected replicas back into service.

All fabric counters/gauges flow into :mod:`repro.obs` under the
``fabric.*`` prefix (and therefore out of the Prometheus exporter):
queue depth, batch occupancy, coalesced rows vs flushes (the coalesce
ratio), single-path bypasses, and per-tenant shed counts; per-tenant
breakers publish the standard ``serving.breaker.tenant.<name>.*``
transition counters and ``open`` gauges.
"""

from __future__ import annotations

import threading
import time
import zlib
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.exceptions import ServingError
from repro.obs.runtime import OBS as _OBS
from repro.serving.breaker import CLOSED, AdmissionController, CircuitBreaker
from repro.serving.fallback import TIER_COMPILED
from repro.serving.faults import ReplicaFaultInjector
from repro.serving.health import (
    HealthPolicy,
    HealthProber,
    QuantileTracker,
    ReplicaHealth,
)
from repro.serving.server import (
    STATUS_FAILED,
    STATUS_SHED,
    ColumnarBatchResult,
    ModelServer,
    QueryResult,
    ServerStats,
)


def _validate_tenant(tenant) -> str:
    """Tenant names must be non-blank strings.

    Silently CRC-hashing ``str(None)`` or ``""`` would route phantom
    tenants onto real shards and corrupt per-tenant accounting, so bad
    names are refused at the door.
    """
    if not isinstance(tenant, str):
        raise ServingError(
            f"tenant name must be a string, got {type(tenant).__name__}"
        )
    if not tenant.strip():
        raise ServingError("tenant name must be non-empty")
    return tenant


def shard_index(tenant: str, n_shards: int) -> int:
    """Consistent tenant→shard mapping: CRC32 mod shard count.

    Stable across processes, restarts, and registration order — the
    property that lets a fleet of routers agree on placement without
    coordination.
    """
    if n_shards < 1:
        raise ServingError("n_shards must be >= 1")
    tenant = _validate_tenant(tenant)
    return zlib.crc32(tenant.encode("utf-8")) % n_shards


@dataclass
class TenantState:
    """One tenant's budget and accounting inside the fabric."""

    name: str
    shard: int
    admission: "AdmissionController | None"
    breaker: CircuitBreaker
    stats: ServerStats = field(default_factory=ServerStats)

    def snapshot(self) -> dict:
        info = {
            "shard": self.shard,
            "breaker_state": self.breaker.state,
            "breaker_trips": self.breaker.n_trips,
            "stats": self.stats.as_dict(),
        }
        if self.admission is not None:
            info["admission"] = {
                "overload_fraction": self.admission.overload_fraction,
                "n_admitted": self.admission.n_admitted,
                "n_shed": self.admission.n_shed,
            }
        return info


@dataclass(frozen=True)
class HedgePolicy:
    """When to issue a backup query against a sibling replica.

    The hedge delay adapts to the group's observed latency: it is
    ``multiplier`` times the streaming p95 (per-group
    :class:`~repro.serving.health.QuantileTracker`), floored at
    ``min_delay_s`` so cold groups and microsecond workloads do not
    hedge every call.  Until ``warmup`` samples have been observed the
    floor alone applies.
    """

    min_delay_s: float = 0.01
    multiplier: float = 2.0
    warmup: int = 16

    def __post_init__(self):
        if self.min_delay_s <= 0.0:
            raise ServingError("min_delay_s must be > 0")
        if self.multiplier <= 0.0:
            raise ServingError("multiplier must be > 0")
        if self.warmup < 1:
            raise ServingError("warmup must be >= 1")


def _group_failed(result) -> bool:
    """Did this call fail outright (every row FAILED)?

    Failover retries a sibling only on *total* failure — partial
    results (some rows shed/rejected) are real answers whose budgets
    were already charged.
    """
    if isinstance(result, list):
        return bool(result) and all(r.status == STATUS_FAILED for r in result)
    return result.status == STATUS_FAILED


def _group_deadline_missed(result) -> bool:
    if isinstance(result, list):
        return any(r.deadline_exceeded for r in result)
    return result.deadline_exceeded


class ReplicaGroup:
    """One ring slot hosting ``n`` replicas of the same model.

    Presents the :class:`ModelServer` query surface (``query`` /
    ``query_batch`` / ``query_batch_columns`` plus the ``chain`` /
    ``breakers`` / ``stats`` / ``model`` / ``version`` accessors the
    router and batcher rely on), so a group drops in anywhere a single
    shard server did.  On top of the surface it adds:

    - **health-ordered routing** — every dispatch lands on the replica
      ranked healthiest by :class:`~repro.serving.health.ReplicaHealth`
      (EJECTED replicas sort last, tripped compiled tiers next-to-last);
    - **failover** — when the chosen replica fails outright, the call
      retries down the health order (``fabric.failover.switches``;
      ``fabric.failover.exhausted`` when every replica failed);
    - **hedged requests** — with a :class:`HedgePolicy` and ≥2 live
      replicas, a backup is issued to the next-healthiest sibling once
      the primary has been quiet past the adaptive p95-based hedge
      delay; first response wins and the loser is accounted under
      ``fabric.hedge.{issued,won,wasted}``;
    - **fault injection** — a per-replica
      :class:`~repro.serving.faults.ReplicaFaultInjector` consulted
      before each dispatch; an injected fault synthesizes a FAILED
      result *without touching the replica*, exactly like an
      unreachable shard (the replica's own stats never see the call).
    """

    def __init__(
        self,
        replicas: "Sequence[ModelServer]",
        *,
        name: str = "shard",
        health_policy: "HealthPolicy | None" = None,
        hedge: "HedgePolicy | bool | None" = None,
    ):
        if not replicas:
            raise ServingError("ReplicaGroup needs at least one replica")
        self.name = str(name)
        self.replicas: tuple[ModelServer, ...] = tuple(replicas)
        self.policy = health_policy or HealthPolicy()
        if hedge is True:
            hedge = HedgePolicy()
        self.hedge: "HedgePolicy | None" = hedge or None
        self.health = tuple(
            ReplicaHealth(policy=self.policy, name=f"{self.name}.r{i}")
            for i in range(len(self.replicas))
        )
        #: Group-level latency quantile feeding the hedge delay.
        self.latency = QuantileTracker(self.policy.quantile)
        self._faults: "dict[int, ReplicaFaultInjector]" = {}
        self._executor: "ThreadPoolExecutor | None" = None
        self._lock = threading.Lock()
        self.n_failovers = 0
        self.n_exhausted = 0
        self.n_faults_injected = 0
        self.n_hedges_issued = 0
        self.n_hedges_won = 0
        self.n_hedges_wasted = 0

    # ------------------------------------------------------------------ #
    # ModelServer-compatible surface (delegates to the current primary)
    # ------------------------------------------------------------------ #

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    def order(self) -> "list[int]":
        """Replica indices, healthiest first.

        Sort key: ACTIVE before ejected/probation, closed compiled
        breaker before tripped, then descending health score, then
        index (stable tiebreak).
        """
        keyed = []
        for i, h in enumerate(self.health):
            r = self.replicas[i]
            tripped = int(
                r.chain is not None
                and r.breakers[TIER_COMPILED].state != CLOSED
            )
            keyed.append((0 if h.active else 1, tripped, -h.score, i))
        keyed.sort()
        return [k[-1] for k in keyed]

    def primary_index(self) -> int:
        return self.order()[0]

    @property
    def primary(self) -> ModelServer:
        return self.replicas[self.primary_index()]

    @property
    def chain(self):
        return self.primary.chain

    @property
    def breakers(self):
        return self.primary.breakers

    @property
    def model(self):
        return self.primary.model

    @property
    def version(self):
        return self.primary.version

    @property
    def registry(self):
        return self.primary.registry

    @property
    def stats(self) -> ServerStats:
        """Primary replica's stats (see :meth:`stats_dict` for the
        group-wide aggregate)."""
        return self.primary.stats

    @property
    def batch_ready(self) -> bool:
        """May the batcher coalesce onto this group right now?

        True when some routable replica still has a closed compiled
        tier — with replicas, one tripped kernel should not push the
        whole slot onto the slow single-query path.
        """
        candidates = [i for i, h in enumerate(self.health) if h.active]
        if not candidates:
            candidates = list(range(len(self.replicas)))
        return any(
            self.replicas[i].chain is not None
            and self.replicas[i].breakers[TIER_COMPILED].state == CLOSED
            for i in candidates
        )

    def refresh(self) -> "int | None":
        versions = [r.refresh() for r in self.replicas]
        return versions[0]

    def stats_dict(self) -> dict:
        """Row-equivalent aggregate over every replica's ServerStats."""
        agg: "dict | None" = None
        for r in self.replicas:
            d = r.stats.as_dict()
            if agg is None:
                agg = d
                continue
            for k, v in d.items():
                if k == "tier_counts":
                    for tier, c in v.items():
                        agg["tier_counts"][tier] = (
                            agg["tier_counts"].get(tier, 0) + c
                        )
                else:
                    agg[k] += v
        assert agg is not None
        return agg

    # ------------------------------------------------------------------ #
    # Fault injection
    # ------------------------------------------------------------------ #

    def inject_fault(
        self, replica: int, injector: ReplicaFaultInjector
    ) -> ReplicaFaultInjector:
        """Attach ``injector`` to one replica (chaos tests, CLI drills)."""
        if not 0 <= replica < len(self.replicas):
            raise ServingError(
                f"replica index {replica} out of range for {self.name!r}"
            )
        with self._lock:
            self._faults[replica] = injector
        return injector

    def fault_injector(self, replica: int) -> "ReplicaFaultInjector | None":
        with self._lock:
            return self._faults.get(replica)

    def clear_faults(self) -> None:
        with self._lock:
            self._faults.clear()

    # ------------------------------------------------------------------ #
    # Dispatch, failover, hedging
    # ------------------------------------------------------------------ #

    def _synth_failed(self, method: str, args: tuple, reason: str):
        """A FAILED result shaped like ``method``'s return type."""
        errors = {"fault": reason}
        if method == "query_batch":
            rows = args[1]
            return [
                QueryResult(status=STATUS_FAILED, tier_errors=dict(errors))
                for _ in rows
            ]
        if method == "query_batch_columns":
            columns = args[1]
            n_rows = max((len(c) for c in columns.values()), default=0)
            return ColumnarBatchResult(
                status=STATUS_FAILED, n_rows=n_rows, tier_errors=errors
            )
        return QueryResult(status=STATUS_FAILED, tier_errors=errors)

    def _dispatch(self, idx: int, method: str, args: tuple):
        """One timed call to one replica, health-scored on the way out."""
        with self._lock:
            injector = self._faults.get(idx)
        started = time.monotonic()
        reason = injector.before_call() if injector is not None else None
        if reason is None:
            result = getattr(self.replicas[idx], method)(*args)
        else:
            with self._lock:
                self.n_faults_injected += 1
            if _OBS.enabled:
                _OBS.metrics.counter("fabric.faults.injected").inc()
            result = self._synth_failed(method, args, reason)
        elapsed = time.monotonic() - started
        self.health[idx].record(
            ok=not _group_failed(result),
            deadline_miss=_group_deadline_missed(result),
            latency_s=elapsed,
        )
        self.latency.update(elapsed)
        return result

    def hedge_delay(self) -> float:
        """Adaptive hedge trigger: multiplier × streaming p95, floored."""
        assert self.hedge is not None
        policy = self.hedge
        p95 = self.latency.value if self.latency.n >= policy.warmup else 0.0
        return max(policy.min_delay_s, p95 * policy.multiplier)

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=max(2, 2 * len(self.replicas)),
                    thread_name_prefix=f"hedge-{self.name}",
                )
            return self._executor

    def _hedged(self, method: str, args: tuple, order: "list[int]"):
        """Primary + delayed backup, first response wins."""
        executor = self._ensure_executor()
        primary, backup = order[0], order[1]
        f_primary = executor.submit(self._dispatch, primary, method, args)
        try:
            return f_primary.result(timeout=self.hedge_delay()), {primary}
        except FutureTimeout:
            pass
        with self._lock:
            self.n_hedges_issued += 1
        if _OBS.enabled:
            _OBS.metrics.counter("fabric.hedge.issued").inc()
        f_backup = executor.submit(self._dispatch, backup, method, args)
        done, _ = futures_wait(
            {f_primary, f_backup}, return_when=FIRST_COMPLETED
        )
        backup_won = f_primary not in done
        result = (f_backup if backup_won else f_primary).result()
        if _group_failed(result):
            # The loser is already in flight; its answer is free — take
            # it if it is better than the winner's failure.
            other = (f_primary if backup_won else f_backup).result()
            if not _group_failed(other):
                result, backup_won = other, not backup_won
        with self._lock:
            if backup_won:
                self.n_hedges_won += 1
            else:
                self.n_hedges_wasted += 1
        if _OBS.enabled:
            _OBS.metrics.counter(
                "fabric.hedge.won" if backup_won else "fabric.hedge.wasted"
            ).inc()
        return result, {primary, backup}

    def _call(self, method: str, args: tuple):
        """Route one call: hedge (if enabled), then fail over in health
        order until a replica answers or every one has been tried."""
        order = self.order()
        if self.hedge is not None and len(order) > 1:
            result, tried = self._hedged(method, args, order)
        else:
            result = self._dispatch(order[0], method, args)
            tried = {order[0]}
        if _group_failed(result):
            for idx in order:
                if idx in tried:
                    continue
                with self._lock:
                    self.n_failovers += 1
                if _OBS.enabled:
                    _OBS.metrics.counter("fabric.failover.switches").inc()
                tried.add(idx)
                result = self._dispatch(idx, method, args)
                if not _group_failed(result):
                    break
            if _group_failed(result):
                with self._lock:
                    self.n_exhausted += 1
                if _OBS.enabled:
                    _OBS.metrics.counter("fabric.failover.exhausted").inc()
        return result

    # Query surface — same signatures as ModelServer. ------------------- #

    def query(self, variables, evidence=None, binned: bool = False):
        return self._call("query", (variables, evidence, binned))

    def query_batch(self, variables, rows, binned: bool = False):
        return self._call("query_batch", (variables, rows, binned))

    def query_batch_columns(self, variables, columns):
        return self._call("query_batch_columns", (variables, columns))

    # ------------------------------------------------------------------ #
    # Probe surface (driven by HealthProber)
    # ------------------------------------------------------------------ #

    def canary(self, idx: int):
        """One canary query against a specific replica (probe path)."""
        return self._dispatch(idx, "canary", ())

    def restore_replica(self, idx: int) -> None:
        """Post-readmission cleanup: the replica re-enters with closed
        breakers so stale trip state cannot immediately re-eject it."""
        for breaker in self.replicas[idx].breakers.values():
            breaker.reset()

    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        with self._lock:
            faults = {
                str(i): inj.snapshot() for i, inj in sorted(self._faults.items())
            }
        return {
            "name": self.name,
            "n_replicas": len(self.replicas),
            "replicas": [h.snapshot() for h in self.health],
            "failover": {
                "switches": self.n_failovers,
                "exhausted": self.n_exhausted,
            },
            "hedge": {
                "issued": self.n_hedges_issued,
                "won": self.n_hedges_won,
                "wasted": self.n_hedges_wasted,
            },
            "faults_injected": self.n_faults_injected,
            "faults": faults,
        }

    def close(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False)


class ShardRouter:
    """Multi-tenant front door over a fixed ring of model servers.

    Tenants are registered with :meth:`add_tenant` (or lazily on first
    use when ``auto_register`` is on) and every query flows through
    that tenant's budget *before* touching the shard:

    1. the per-tenant circuit breaker (trips on sustained failures /
       deadline overruns of this tenant's own traffic, so a tenant whose
       queries keep failing stops burning shard capacity);
    2. the per-tenant admission controller (seeded, deterministic
       shedding once the tenant's recent overload fraction crosses its
       threshold);
    3. the shard's own :class:`ModelServer` guards (its admission,
       per-tier breakers, fallback chain).

    Every outcome is tallied in the tenant's own :class:`ServerStats`
    rollup in addition to the shard server's stats.
    """

    def __init__(
        self,
        shards: "Sequence[ModelServer | ReplicaGroup]",
        *,
        auto_register: bool = True,
        tenant_budget: "Callable[[str], AdmissionController | None] | None" = None,
        breaker_threshold: int = 5,
        breaker_cooldown: int = 50,
        health_policy: "HealthPolicy | None" = None,
        hedge: "HedgePolicy | bool | None" = None,
    ):
        if not shards:
            raise ServingError("ShardRouter needs at least one shard")
        # Bare ModelServers become single-replica groups so the whole
        # routing/failover/probe surface is uniform.
        self.shards: tuple[ReplicaGroup, ...] = tuple(
            shard
            if isinstance(shard, ReplicaGroup)
            else ReplicaGroup(
                [shard],
                name=f"shard{i}",
                health_policy=health_policy,
                hedge=hedge,
            )
            for i, shard in enumerate(shards)
        )
        self.auto_register = bool(auto_register)
        self._tenant_budget = tenant_budget
        self._breaker_threshold = int(breaker_threshold)
        self._breaker_cooldown = int(breaker_cooldown)
        self._tenants: dict[str, TenantState] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Tenant lifecycle
    # ------------------------------------------------------------------ #

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def tenants(self) -> "list[str]":
        with self._lock:
            return sorted(self._tenants)

    def shard_of(self, tenant: str) -> int:
        return shard_index(tenant, len(self.shards))

    def server_for(self, tenant: str) -> ReplicaGroup:
        return self.shards[self.shard_of(tenant)]

    def add_tenant(
        self,
        name: str,
        *,
        admission: "AdmissionController | None" = None,
        breaker: "CircuitBreaker | None" = None,
    ) -> TenantState:
        """Register ``name`` with its budgets (idempotent per name)."""
        name = _validate_tenant(name)
        with self._lock:
            state = self._tenants.get(name)
            if state is not None:
                return state
            if admission is None and self._tenant_budget is not None:
                admission = self._tenant_budget(name)
            if breaker is None:
                breaker = CircuitBreaker(
                    self._breaker_threshold,
                    self._breaker_cooldown,
                    name=f"tenant.{name}",
                )
            state = TenantState(
                name=name,
                shard=self.shard_of(name),
                admission=admission,
                breaker=breaker,
            )
            self._tenants[name] = state
            return state

    def tenant_state(self, tenant: str) -> TenantState:
        tenant = _validate_tenant(tenant)
        state = self._tenants.get(tenant)
        if state is None:
            if not self.auto_register:
                raise ServingError(f"unknown tenant {tenant!r}")
            state = self.add_tenant(tenant)
        return state

    # ------------------------------------------------------------------ #
    # Budget gate
    # ------------------------------------------------------------------ #

    def _gate(self, state: TenantState) -> "QueryResult | None":
        """Apply the tenant's breaker + admission; a result means shed."""
        if not state.breaker.allow():
            result = QueryResult(
                status=STATUS_SHED,
                reasons=(f"tenant {state.name!r} circuit open",),
            )
            state.stats._count(result)
            self._tenant_shed(state, "breaker")
            return result
        if state.admission is not None and not state.admission.admit():
            # The breaker probe above was spent on a query that never
            # ran; report it as a non-failure so a half-open tenant is
            # not re-tripped by its own admission shedding.
            state.breaker.record_success()
            result = QueryResult(
                status=STATUS_SHED,
                reasons=(f"tenant {state.name!r} admission: over budget",),
            )
            state.stats._count(result)
            self._tenant_shed(state, "admission")
            return result
        return None

    @staticmethod
    def _tenant_shed(state: TenantState, why: str) -> None:
        if _OBS.enabled:
            m = _OBS.metrics
            m.counter("fabric.tenant_shed").inc()
            m.counter(f"fabric.tenant.{state.name}.shed_{why}").inc()

    def _settle(self, state: TenantState, result: QueryResult) -> QueryResult:
        """Tenant-side accounting for one completed query."""
        overload = result.deadline_exceeded or result.status == STATUS_FAILED
        if overload:
            state.breaker.record_failure()
        else:
            state.breaker.record_success()
        if state.admission is not None:
            state.admission.record(overload)
        state.stats._count(result)
        return result

    # ------------------------------------------------------------------ #
    # Query surface
    # ------------------------------------------------------------------ #

    def query(
        self,
        tenant: str,
        variables: Sequence[str],
        evidence: "Mapping | None" = None,
        binned: bool = False,
    ) -> QueryResult:
        """One guarded query under ``tenant``'s budget."""
        state = self.tenant_state(tenant)
        shed = self._gate(state)
        if shed is not None:
            return shed
        result = self.shards[state.shard].query(
            variables, evidence, binned=binned
        )
        return self._settle(state, result)

    def query_batch(
        self,
        tenant: str,
        variables: Sequence[str],
        rows: "Sequence[Mapping]",
        binned: bool = False,
    ) -> "list[QueryResult]":
        """Row-wise guarded batch under ``tenant``'s budget."""
        if not rows:
            return []
        state = self.tenant_state(tenant)
        shed = self._gate(state)
        if shed is not None:
            out = []
            for _ in range(len(rows) - 1):
                extra = QueryResult(status=STATUS_SHED, reasons=shed.reasons)
                state.stats._count(extra)
                out.append(extra)
            return [shed] + out
        results = self.shards[state.shard].query_batch(
            variables, rows, binned=binned
        )
        for r in results:
            self._settle(state, r)
        return results

    def query_batch_columns(
        self,
        tenant: str,
        variables: Sequence[str],
        columns: "Mapping[str, Sequence[int]]",
    ) -> ColumnarBatchResult:
        """Columnar bulk lane under ``tenant``'s budget (binned states)."""
        state = self.tenant_state(tenant)
        shed = self._gate(state)
        if shed is not None:
            n_rows = 0
            for col in columns.values():
                n_rows = max(n_rows, len(col))
            result = ColumnarBatchResult(
                status=STATUS_SHED, n_rows=n_rows, reasons=shed.reasons
            )
            # _gate already counted one row; count the remainder so the
            # tenant rollup stays row-equivalent.
            if n_rows > 1:
                remainder = ColumnarBatchResult(
                    status=STATUS_SHED, n_rows=n_rows - 1
                )
                state.stats._count_columnar(remainder)
            return result
        result = self.shards[state.shard].query_batch_columns(
            variables, columns
        )
        overload = result.deadline_exceeded or result.status == STATUS_FAILED
        if overload:
            state.breaker.record_failure()
        else:
            state.breaker.record_success()
        if state.admission is not None:
            state.admission.record(overload)
        state.stats._count_columnar(result)
        return result

    # ------------------------------------------------------------------ #

    def refresh(self) -> "list[int | None]":
        """Follow each registry-backed shard's active version."""
        return [shard.refresh() for shard in self.shards]

    def stats(self) -> dict:
        """Rollup: per-shard server stats + per-tenant budget state."""
        with self._lock:
            tenants = dict(self._tenants)
        return {
            "n_shards": len(self.shards),
            "shards": [
                {
                    "stats": shard.stats_dict(),
                    "version": shard.version,
                    "breakers": {
                        tier: b.state for tier, b in shard.breakers.items()
                    },
                    "replicas": shard.snapshot(),
                }
                for shard in self.shards
            ],
            "tenants": {
                name: state.snapshot() for name, state in sorted(tenants.items())
            },
        }


# --------------------------------------------------------------------- #
# Dynamic batching
# --------------------------------------------------------------------- #


class PendingQuery:
    """A submitted single query awaiting its coalesced batch."""

    __slots__ = (
        "tenant",
        "evidence",
        "submitted_at",
        "default_timeout",
        "_event",
        "_result",
    )

    def __init__(
        self,
        tenant: str,
        evidence: dict,
        default_timeout: "float | None" = None,
    ):
        self.tenant = tenant
        self.evidence = evidence
        self.submitted_at = time.monotonic()
        #: Wait bound applied when ``result()`` is called without an
        #: explicit timeout — set by the batcher from its flush cadence
        #: so a dead flusher can never strand a waiter forever.
        self.default_timeout = default_timeout
        self._event = threading.Event()
        self._result: "QueryResult | None" = None

    def _resolve(self, result: QueryResult) -> None:
        self._result = result
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: "float | None" = None) -> QueryResult:
        """Block until the coalesced batch answers.

        Without an explicit ``timeout`` the batcher-assigned
        ``default_timeout`` applies (many flush intervals), so waiters
        always wake with a diagnosable error instead of blocking
        forever if the flusher thread died.
        """
        if timeout is None:
            timeout = self.default_timeout
        if not self._event.wait(timeout):
            raise ServingError(
                f"pending query for tenant {self.tenant!r} timed out "
                f"after {timeout}s — the batcher may be closed or its "
                f"flusher stalled"
            )
        assert self._result is not None
        return self._result


class _Bucket:
    """Pending queries sharing (shard, variables, signature, binned)."""

    __slots__ = ("key", "entries", "created_at")

    def __init__(self, key: tuple):
        self.key = key
        self.entries: "list[PendingQuery]" = []
        self.created_at = time.monotonic()


class DynamicBatcher:
    """Coalesce concurrent single queries into ``query_batch`` calls.

    Callers :meth:`submit` (non-blocking, returns a
    :class:`PendingQuery`) or :meth:`query` (submit + wait).  Requests
    are bucketed by ``(shard, variables, evidence signature, binned)``
    — the compiled batch signature — so one flush answers every waiter
    with a single vectorized kernel pass.  Buckets flush when

    - they reach ``max_batch`` rows (flushed inline on the submitting
      thread: the batch is full, waiting buys nothing), or
    - the background flusher finds them older than ``max_wait_us``
      (deadline-aware: the oldest waiter bounds the sweep).

    Tenant budgets are enforced at submit time (shed requests never
    enqueue) and tenant accounting at completion time, so coalescing
    *across* tenants on the same shard is safe: the rows share one
    kernel call while each tenant's rollup sees exactly its own rows.

    When the target shard's compiled batch tier is tripped, new
    requests **bypass the queue** and run as singles through the
    router — queueing behind a broken kernel would add wait latency to
    an already-degraded path (``fabric.batcher.bypass`` counts these).
    """

    def __init__(
        self,
        router: ShardRouter,
        *,
        max_batch: int = 64,
        max_wait_us: float = 2000.0,
        binned: bool = False,
    ):
        if max_batch < 1:
            raise ServingError("max_batch must be >= 1")
        if max_wait_us <= 0:
            raise ServingError("max_wait_us must be > 0")
        self.router = router
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_us) / 1e6
        self.binned = bool(binned)
        self._lock = threading.Lock()
        self._buckets: "dict[tuple, _Bucket]" = {}
        self._depth = 0
        # Plain counters (readable without obs): flush accounting.
        self.n_submitted = 0
        self.n_flushes = 0
        self.n_coalesced_rows = 0
        self.n_bypass = 0
        #: Default bound for ``PendingQuery.result()`` waits: many
        #: flush intervals plus generous kernel headroom.
        self.default_result_timeout = max(1.0, 50.0 * self.max_wait_s)
        self._closed = False
        self._stop = threading.Event()
        self._flusher = threading.Thread(
            target=self._flush_loop, name="fabric-batcher", daemon=True
        )
        self._flusher.start()

    # ------------------------------------------------------------------ #

    @property
    def coalesce_ratio(self) -> float:
        """Mean rows answered per kernel flush (>1 means coalescing)."""
        return self.n_coalesced_rows / self.n_flushes if self.n_flushes else 0.0

    @property
    def queue_depth(self) -> int:
        return self._depth

    def submit(
        self,
        tenant: str,
        variables: Sequence[str],
        evidence: "Mapping | None" = None,
        binned: "bool | None" = None,
    ) -> PendingQuery:
        """Enqueue one query; returns a handle to wait on.

        Budget-shed and bypassed requests come back already resolved.
        """
        if self._closed:
            raise ServingError("batcher is closed")
        binned = self.binned if binned is None else bool(binned)
        state = self.router.tenant_state(tenant)
        evidence = dict(evidence or {})
        pending = PendingQuery(
            str(tenant), evidence, default_timeout=self.default_result_timeout
        )
        shed = self.router._gate(state)
        if shed is not None:
            pending._resolve(shed)
            return pending
        shard_server = self.router.shards[state.shard]
        if not shard_server.batch_ready:
            # Every routable replica's batch tier is tripped (or the
            # model is non-discrete): fall back to a single query now
            # instead of queueing behind a broken tier.
            self.n_bypass += 1
            if _OBS.enabled:
                _OBS.metrics.counter("fabric.batcher.bypass").inc()
            result = shard_server.query(variables, evidence, binned=binned)
            pending._resolve(self.router._settle(state, result))
            return pending
        key = (
            state.shard,
            tuple(map(str, variables)),
            tuple(sorted(map(str, evidence))),
            binned,
        )
        full: "_Bucket | None" = None
        with self._lock:
            # Re-check under the lock: a concurrent close() may have
            # flipped the flag after the fast check above, and a bucket
            # enqueued now would never be swept.
            if self._closed:
                raise ServingError("batcher is closed")
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = self._buckets[key] = _Bucket(key)
            bucket.entries.append(pending)
            self.n_submitted += 1
            self._depth += 1
            if len(bucket.entries) >= self.max_batch:
                full = self._buckets.pop(key)
        if _OBS.enabled:
            _OBS.metrics.gauge("fabric.batcher.queue_depth").set(self._depth)
        if full is not None:
            self._flush_bucket(full)
        return pending

    def query(
        self,
        tenant: str,
        variables: Sequence[str],
        evidence: "Mapping | None" = None,
        binned: "bool | None" = None,
        timeout: "float | None" = None,
    ) -> QueryResult:
        """Submit and wait: a drop-in, coalescing ``router.query``."""
        pending = self.submit(tenant, variables, evidence, binned=binned)
        # timeout=None falls through to the batcher-assigned default
        # bound (many flush intervals), never an unbounded wait.
        return pending.result(timeout)

    def flush(self) -> int:
        """Flush every pending bucket now; returns rows flushed."""
        with self._lock:
            buckets = list(self._buckets.values())
            self._buckets.clear()
        flushed = 0
        for bucket in buckets:
            flushed += len(bucket.entries)
            self._flush_bucket(bucket)
        return flushed

    def close(self) -> None:
        """Stop and join the flusher, then drain everything queued.

        Idempotent.  After close, :meth:`submit` raises
        :class:`ServingError` — a late request would enqueue into a
        bucket no flusher will ever sweep and its waiter would hang
        until its default timeout.  The final drain runs *after* the
        join so nothing the flusher was sweeping races the shutdown.
        """
        with self._lock:
            self._closed = True
        self._stop.set()
        if (
            self._flusher.is_alive()
            and threading.current_thread() is not self._flusher
        ):
            self._flusher.join(timeout=10.0)
        self.flush()

    def __enter__(self) -> "DynamicBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #

    def _flush_loop(self) -> None:
        interval = max(self.max_wait_s / 2.0, 1e-4)
        while not self._stop.wait(interval):
            now = time.monotonic()
            aged: "list[_Bucket]" = []
            with self._lock:
                for key in list(self._buckets):
                    bucket = self._buckets[key]
                    oldest = (
                        bucket.entries[0].submitted_at
                        if bucket.entries
                        else bucket.created_at
                    )
                    if now - oldest >= self.max_wait_s:
                        aged.append(self._buckets.pop(key))
            for bucket in aged:
                try:
                    self._flush_bucket(bucket)
                except Exception:  # pragma: no cover - defensive: resolve all
                    continue

    def _flush_bucket(self, bucket: _Bucket) -> None:
        entries = bucket.entries
        if not entries:
            return
        shard_idx, variables, _signature, binned = bucket.key
        shard_server = self.router.shards[shard_idx]
        with self._lock:
            self._depth -= len(entries)
            self.n_flushes += 1
            self.n_coalesced_rows += len(entries)
        if _OBS.enabled:
            m = _OBS.metrics
            m.counter("fabric.batcher.flushes").inc()
            m.counter("fabric.batcher.coalesced_rows").inc(len(entries))
            m.histogram(
                "fabric.batcher.occupancy",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
            ).observe(len(entries))
            m.gauge("fabric.batcher.queue_depth").set(self._depth)
        try:
            results = shard_server.query_batch(
                variables, [p.evidence for p in entries], binned=binned
            )
        except Exception as exc:  # defensive: waiters must always wake
            error = f"{type(exc).__name__}: {exc}"
            for pending in entries:
                state = self.router.tenant_state(pending.tenant)
                failed = QueryResult(
                    status=STATUS_FAILED, tier_errors={"batcher": error}
                )
                pending._resolve(self.router._settle(state, failed))
            return
        for pending, result in zip(entries, results):
            state = self.router.tenant_state(pending.tenant)
            pending._resolve(self.router._settle(state, result))


# --------------------------------------------------------------------- #
# Facade
# --------------------------------------------------------------------- #


class ServingFabric:
    """Router + batcher + health prober, bundled for the CLI and the
    load harness."""

    def __init__(
        self,
        shards: "Sequence[ModelServer | ReplicaGroup]",
        *,
        max_batch: int = 64,
        max_wait_us: float = 2000.0,
        binned: bool = False,
        auto_register: bool = True,
        tenant_budget: "Callable[[str], AdmissionController | None] | None" = None,
        breaker_threshold: int = 5,
        breaker_cooldown: int = 50,
        health_policy: "HealthPolicy | None" = None,
        hedge: "HedgePolicy | bool | None" = None,
        probe_interval_s: "float | None" = 0.25,
    ):
        self.router = ShardRouter(
            shards,
            auto_register=auto_register,
            tenant_budget=tenant_budget,
            breaker_threshold=breaker_threshold,
            breaker_cooldown=breaker_cooldown,
            health_policy=health_policy,
            hedge=hedge,
        )
        self.batcher = DynamicBatcher(
            self.router,
            max_batch=max_batch,
            max_wait_us=max_wait_us,
            binned=binned,
        )
        # The probe loop only matters when some slot can actually fail
        # over, but it is cheap (it sleeps unless a replica is ejected)
        # so it runs whenever an interval is configured.
        self.prober: "HealthProber | None" = None
        if probe_interval_s is not None:
            self.prober = HealthProber(
                self.router.shards, interval_s=probe_interval_s
            )
            self.prober.start()

    # Single queries coalesce through the batcher.
    def query(self, tenant, variables, evidence=None, binned=None, timeout=None):
        return self.batcher.query(
            tenant, variables, evidence, binned=binned, timeout=timeout
        )

    def submit(self, tenant, variables, evidence=None, binned=None):
        return self.batcher.submit(tenant, variables, evidence, binned=binned)

    # Bulk traffic goes straight through the router.
    def query_batch(self, tenant, variables, rows, binned=False):
        return self.router.query_batch(tenant, variables, rows, binned=binned)

    def query_batch_columns(self, tenant, variables, columns):
        return self.router.query_batch_columns(tenant, variables, columns)

    def add_tenant(self, name, **kwargs):
        return self.router.add_tenant(name, **kwargs)

    def stats(self) -> dict:
        out = self.router.stats()
        out["batcher"] = {
            "submitted": self.batcher.n_submitted,
            "flushes": self.batcher.n_flushes,
            "coalesced_rows": self.batcher.n_coalesced_rows,
            "coalesce_ratio": self.batcher.coalesce_ratio,
            "bypass": self.batcher.n_bypass,
            "queue_depth": self.batcher.queue_depth,
        }
        if self.prober is not None:
            out["prober"] = self.prober.snapshot()
        return out

    def close(self) -> None:
        if self.prober is not None:
            self.prober.stop()
        self.batcher.close()
        for group in self.router.shards:
            group.close()

    def __enter__(self) -> "ServingFabric":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def build_fabric(
    sources: Sequence, *, n_replicas: int = 1, **kwargs
) -> ServingFabric:
    """One ring slot per source (a model object or a ``ModelRegistry``),
    each hosting ``n_replicas`` independent :class:`ModelServer`\\ s.

    Registry-backed replicas each load their own copy of the active
    bundle (independent engines — one replica's poisoned plan cache or
    tripped tier cannot take down its siblings); bare-model replicas
    wrap the same model object behind separate guard stacks.
    """
    if n_replicas < 1:
        raise ServingError("n_replicas must be >= 1")
    server_kwargs = {
        k: kwargs.pop(k)
        for k in ("deadline_seconds", "n_fallback_samples", "rng")
        if k in kwargs
    }
    health_policy = kwargs.get("health_policy")
    hedge = kwargs.get("hedge")
    shards = [
        ReplicaGroup(
            [ModelServer(source, **server_kwargs) for _ in range(n_replicas)],
            name=f"shard{i}",
            health_policy=health_policy,
            hedge=hedge,
        )
        for i, source in enumerate(sources)
    ]
    return ServingFabric(shards, **kwargs)
