"""The guarded query front-end: :class:`ModelServer`.

This is the one door through which autonomic components query a live
model.  Every entry point:

- **validates** evidence through :mod:`repro.serving.guards` (unknown
  variables, NaN means, out-of-range bins → per-row rejection with
  reasons, never a crash);
- **bounds** latency with a per-query deadline — once overrun, the
  fallback chain stops trying expensive tiers and the cached prior
  answers;
- **degrades** through the :class:`~repro.serving.fallback.FallbackChain`
  on engine failure, recording which tier answered;
- **sheds** load deterministically via per-tier circuit breakers and a
  seeded :class:`~repro.serving.breaker.AdmissionController` once the
  recent overload fraction crosses threshold.

The server can wrap a bare model or a
:class:`~repro.serving.registry.ModelRegistry` — in the latter case
:meth:`refresh` follows the registry's active version, which is how a
rollback propagates to the serving path.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.apps.violation import tail_probability_from_pmf
from repro.bn.network import DiscreteBayesianNetwork, HybridResponseNetwork
from repro.exceptions import ServingError
from repro.obs.runtime import OBS as _OBS
from repro.serving.breaker import AdmissionController, CircuitBreaker
from repro.serving.fallback import (
    CHAIN,
    TIER_COMPILED,
    TIER_PRIOR,
    FallbackChain,
)
from repro.serving.guards import RowRejection, check_row, sanitize_rows
from repro.serving.registry import ModelRegistry
from repro.utils.rng import ensure_rng

#: Backend label for non-chain (continuous/analytic) answers.
TIER_ANALYTIC = "analytic"

STATUS_OK = "ok"
STATUS_REJECTED = "rejected"
STATUS_SHED = "shed"
STATUS_FAILED = "failed"


@dataclass
class QueryResult:
    """One guarded query's outcome — answer or explained refusal."""

    status: str
    value: object = None            # pmf ndarray / float / PAccelResult
    tier: "str | None" = None       # which backend answered
    reasons: tuple = ()             # rejection reasons (status "rejected")
    tier_errors: dict = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    deadline_exceeded: bool = False
    approximate: bool = False

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


@dataclass
class ColumnarBatchResult:
    """Outcome of one :meth:`ModelServer.query_batch_columns` call.

    The columnar fast path answers N same-signature rows with one
    vectorized kernel call and O(1) Python objects, so the result is a
    single batch-level record instead of N :class:`QueryResult`\\ s:
    ``pmfs[j]`` answers the j-th *valid* row; ``valid`` is a boolean
    mask over the input rows (``None`` means every row was valid).
    """

    status: str
    n_rows: int
    pmfs: "np.ndarray | None" = None
    valid: "np.ndarray | None" = None     # bool mask; None == all valid
    n_valid: int = 0
    tier: "str | None" = None
    reasons: tuple = ()
    tier_errors: dict = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    deadline_exceeded: bool = False
    approximate: bool = False

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


@dataclass
class ServerStats:
    """Monotonic counters over the server's lifetime (thread-safe)."""

    n_queries: int = 0
    n_ok: int = 0
    n_rejected: int = 0
    n_shed: int = 0
    n_failed: int = 0
    n_deadline_exceeded: int = 0
    n_rows_rejected: int = 0
    tier_counts: dict = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def _count(self, result: QueryResult) -> None:
        with self._lock:
            self.n_queries += 1
            if result.status == STATUS_OK:
                self.n_ok += 1
                if result.tier is not None:
                    self.tier_counts[result.tier] = (
                        self.tier_counts.get(result.tier, 0) + 1
                    )
            elif result.status == STATUS_REJECTED:
                self.n_rejected += 1
            elif result.status == STATUS_SHED:
                self.n_shed += 1
            else:
                self.n_failed += 1
            if result.deadline_exceeded:
                self.n_deadline_exceeded += 1
        if _OBS.enabled:
            self._record_obs(result)

    def count_rows_rejected(self, n: int) -> None:
        with self._lock:
            self.n_rows_rejected += int(n)

    def _count_columnar(self, result: ColumnarBatchResult) -> None:
        """Bulk accounting for one columnar batch: each input row counts
        exactly like one query through the row-wise path."""
        n = result.n_rows
        n_invalid = n - result.n_valid if result.status == STATUS_OK else 0
        with self._lock:
            self.n_queries += n
            if result.status == STATUS_OK:
                self.n_ok += result.n_valid
                self.n_rejected += n_invalid
                self.n_rows_rejected += n_invalid
                if result.tier is not None and result.n_valid:
                    self.tier_counts[result.tier] = (
                        self.tier_counts.get(result.tier, 0) + result.n_valid
                    )
            elif result.status == STATUS_REJECTED:
                self.n_rejected += n
            elif result.status == STATUS_SHED:
                self.n_shed += n
            else:
                self.n_failed += n
            if result.deadline_exceeded:
                self.n_deadline_exceeded += n
        if _OBS.enabled:
            m = _OBS.metrics
            m.counter("serving.queries").inc(n)
            if result.status == STATUS_OK:
                m.counter(f"serving.status.{STATUS_OK}").inc(result.n_valid)
                if n_invalid:
                    m.counter(f"serving.status.{STATUS_REJECTED}").inc(
                        n_invalid
                    )
                    m.counter("serving.rows_rejected").inc(n_invalid)
                if result.tier is not None and result.n_valid:
                    m.counter(f"serving.tier.{result.tier}").inc(
                        result.n_valid
                    )
            else:
                m.counter(f"serving.status.{result.status}").inc(n)
            if result.deadline_exceeded:
                m.counter("serving.deadline_misses").inc(n)
            if result.elapsed_seconds:
                m.histogram("serving.query.seconds").observe(
                    result.elapsed_seconds
                )

    def as_dict(self) -> dict:
        """Consistent point-in-time snapshot of every counter."""
        with self._lock:
            return {
                "n_queries": self.n_queries,
                "n_ok": self.n_ok,
                "n_rejected": self.n_rejected,
                "n_shed": self.n_shed,
                "n_failed": self.n_failed,
                "n_deadline_exceeded": self.n_deadline_exceeded,
                "n_rows_rejected": self.n_rows_rejected,
                "tier_counts": dict(self.tier_counts),
            }

    def _record_obs(self, result: QueryResult) -> None:
        """Mirror one outcome into the process metrics registry — the
        single choke point every ModelServer entry path flows through."""
        m = _OBS.metrics
        m.counter("serving.queries").inc()
        m.counter(f"serving.status.{result.status}").inc()
        if result.status == STATUS_OK and result.tier is not None:
            m.counter(f"serving.tier.{result.tier}").inc()
            if result.tier_errors:
                m.counter("serving.degraded_answers").inc()
        if result.deadline_exceeded:
            m.counter("serving.deadline_misses").inc()
        if result.status == STATUS_REJECTED:
            m.counter("serving.rejection_reasons").inc(len(result.reasons))
        if result.elapsed_seconds:
            m.histogram("serving.query.seconds").observe(
                result.elapsed_seconds
            )


class ModelServer:
    """Resilient serving facade over a model or a model registry."""

    def __init__(
        self,
        source,
        *,
        deadline_seconds: "float | None" = None,
        n_fallback_samples: int = 1500,
        breaker_threshold: int = 3,
        breaker_cooldown: int = 25,
        admission: "AdmissionController | None" = None,
        rng=None,
    ):
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ServingError("deadline_seconds must be > 0 when set")
        self.deadline_seconds = deadline_seconds
        self.n_fallback_samples = int(n_fallback_samples)
        self.rng = ensure_rng(rng)
        self.admission = admission
        self.breakers = {
            tier: CircuitBreaker(breaker_threshold, breaker_cooldown, name=tier)
            for tier in (*CHAIN[:-1], TIER_ANALYTIC)
        }
        self.stats = ServerStats()
        self._registry: "ModelRegistry | None" = None
        self._model = None
        self._version: "int | None" = None
        self._chain: "FallbackChain | None" = None
        self._assessor = None
        self._model_lock = threading.Lock()
        if isinstance(source, ModelRegistry):
            self._registry = source
            self.refresh()
        else:
            self._set_model(source, version=None)

    # ------------------------------------------------------------------ #
    # Model lifecycle
    # ------------------------------------------------------------------ #

    @property
    def model(self):
        return self._model

    @property
    def version(self) -> "int | None":
        """Registry version currently served (None for a bare model)."""
        return self._version

    @property
    def registry(self) -> "ModelRegistry | None":
        return self._registry

    def refresh(self) -> "int | None":
        """Follow the registry's active version (no-op for bare models,
        or when the active version is already the one being served)."""
        if self._registry is None:
            return None
        active = self._registry.active_version
        if active is None:
            raise ServingError("registry has no active version to serve")
        if active != self._version:
            self._set_model(self._registry.load(active), version=active)
        return self._version

    def _set_model(self, model, version: "int | None") -> None:
        if model is None:
            raise ServingError("ModelServer needs a model to serve")
        # Build the new chain before swapping, then publish model + chain
        # under the lock so a concurrent query never observes a model
        # paired with the previous model's chain.
        if isinstance(model.network, DiscreteBayesianNetwork):
            chain = FallbackChain(
                model.network,
                rng=self.rng,
                n_samples=self.n_fallback_samples,
                breakers=self.breakers,
            )
        else:
            chain = None
        with self._model_lock:
            self._model = model
            self._version = version
            self._assessor = None
            self._chain = chain

    @property
    def chain(self) -> "FallbackChain | None":
        """The discrete fallback chain (None for continuous models)."""
        return self._chain

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _deadline(self) -> "float | None":
        if self.deadline_seconds is None:
            return None
        return time.monotonic() + self.deadline_seconds

    def _known(self) -> frozenset:
        return frozenset(map(str, self._model.network.nodes))

    def _cards(self) -> dict:
        return self._model.network.cardinalities

    def _finish(self, result: QueryResult, started: float) -> QueryResult:
        result.elapsed_seconds = time.monotonic() - started
        self.stats._count(result)
        if self.admission is not None and result.status != STATUS_SHED:
            self.admission.record(
                result.deadline_exceeded or result.status == STATUS_FAILED
            )
        return result

    def _admit(self, started: float) -> "QueryResult | None":
        if self.admission is not None and not self.admission.admit():
            return self._finish(
                QueryResult(
                    status=STATUS_SHED,
                    reasons=("admission control: server overloaded",),
                ),
                started,
            )
        return None

    def _to_states(self, row: Mapping, binned: bool) -> dict:
        """Clean raw-mean or binned row → bin-state evidence."""
        if binned:
            return {str(k): int(v) for k, v in row.items()}
        disc = self._model.discretizer
        return {
            str(k): disc.state_of(str(k), float(v)) for k, v in row.items()
        }

    def _reject(self, reasons, started) -> QueryResult:
        return self._finish(
            QueryResult(status=STATUS_REJECTED, reasons=tuple(reasons)), started
        )

    def _discrete_only(self, what: str, binned: bool) -> "tuple[str, ...]":
        if self._chain is None:
            return (
                f"{what} requires a discrete model; the active model is "
                f"{self._model.report.model_kind!r}",
            )
        if not binned and not binnable(self._model):
            return (
                f"{what} requires the model's discretizer for raw evidence",
            )
        return ()

    # ------------------------------------------------------------------ #
    # Query surface
    # ------------------------------------------------------------------ #

    def query(
        self,
        variables: Sequence[str],
        evidence: "Mapping | None" = None,
        binned: bool = False,
    ) -> QueryResult:
        """Guarded posterior pmf ``P(variables | evidence)`` (discrete).

        ``evidence`` values are raw measurement means by default
        (discretized through the model's discretizer) or bin states with
        ``binned=True``.  Malformed evidence → ``status="rejected"`` with
        reasons; engine faults walk the fallback chain.
        """
        started = time.monotonic()
        shed = self._admit(started)
        if shed is not None:
            return shed
        unsupported = self._discrete_only("query", binned)
        if unsupported:
            return self._reject(unsupported, started)
        reasons = check_row(
            dict(evidence or {}),
            known=self._known(),
            cards=self._cards(),
            forbid=set(map(str, variables)),
            binned=binned,
            require_nonempty=False,
        )
        bad_vars = [
            str(v) for v in variables if str(v) not in self._known()
        ]
        if bad_vars:
            reasons = reasons + tuple(
                f"unknown query variable {v!r}" for v in bad_vars
            )
        if not variables:
            reasons = reasons + ("need at least one query variable",)
        if reasons:
            return self._reject(reasons, started)
        deadline = self._deadline()
        states = self._to_states(dict(evidence or {}), binned)
        answer = self._chain.answer(variables, states, deadline=deadline)
        return self._finish(
            QueryResult(
                status=STATUS_OK,
                value=answer.values,
                tier=answer.tier,
                tier_errors=answer.tier_errors,
                deadline_exceeded=any(
                    "deadline" in e for e in answer.tier_errors.values()
                ),
                approximate=answer.approximate,
            ),
            started,
        )

    def canary(self) -> QueryResult:
        """A minimal end-to-end probe query (health-prober path).

        Exercises the full guarded pipeline — admission, chain or
        analytic backend, deadline accounting — with the cheapest
        well-formed query this model can answer: the response node's
        evidence-free posterior for discrete models, a threshold-0
        violation probability for continuous ones.  A clean canary
        (``ok`` with no tier errors) is the readmission signal for a
        blacked-out replica.
        """
        if self._chain is not None:
            return self.query([self._model.response], {}, binned=True)
        return self.violation_prob(0.0)

    def query_batch(
        self,
        variables: Sequence[str],
        rows: "Sequence[Mapping]",
        binned: bool = False,
    ) -> "list[QueryResult]":
        """Guarded batch query: one :class:`QueryResult` per input row.

        Bad rows are rejected individually (with reasons) while clean
        rows are answered; clean rows sharing an evidence signature go
        through the engine's vectorized batch kernel when it is healthy,
        and degrade row-by-row through the chain when it is not.

        Accounting is row-equivalent to the single-query path: every
        row is finished through :meth:`_finish`, so each gets its own
        (distinct) result object with ``elapsed_seconds`` set, each is
        tallied once in :class:`ServerStats`, and each feeds one
        :meth:`AdmissionController.record` outcome — a batch of N rows
        updates stats and admission exactly like N ``query`` calls.
        """
        started = time.monotonic()
        rows = list(rows)
        results: "list[QueryResult | None]" = [None] * len(rows)
        # Per-row admission, mirroring the single-query path: each shed
        # row is a *distinct* result counted once (never N aliases of
        # one mutable QueryResult counted once total).
        if self.admission is not None:
            admitted = []
            for i in range(len(rows)):
                if self.admission.admit():
                    admitted.append(i)
                else:
                    results[i] = self._finish(
                        QueryResult(
                            status=STATUS_SHED,
                            reasons=(
                                "admission control: server overloaded",
                            ),
                        ),
                        started,
                    )
        else:
            admitted = list(range(len(rows)))
        if not admitted:
            return [r for r in results if r is not None]
        unsupported = self._discrete_only("query_batch", binned)
        if unsupported:
            for i in admitted:
                results[i] = self._reject(unsupported, started)
            return [r for r in results if r is not None]
        sanitized = sanitize_rows(
            [rows[i] for i in admitted],
            known=self._known(),
            cards=self._cards(),
            forbid=set(map(str, variables)),
            binned=binned,
        )
        self.stats.count_rows_rejected(sanitized.n_rejected)
        if _OBS.enabled and sanitized.n_rejected:
            _OBS.metrics.counter("serving.rows_rejected").inc(
                sanitized.n_rejected
            )
        # Per-row rejections go through the same finishing path as the
        # single-query `_reject`: elapsed_seconds is stamped, the row is
        # tallied, and the admission controller sees the outcome.
        for rejection in sanitized.rejections:
            results[admitted[rejection.index]] = self._reject(
                rejection.reasons, started
            )
        deadline = self._deadline()
        # Group accepted rows by evidence signature — that *is* the
        # compiled batch signature.
        groups: dict[tuple, list[int]] = {}
        for j, row in enumerate(sanitized.rows):
            groups.setdefault(tuple(sorted(row)), []).append(j)
        for signature, members in groups.items():
            state_rows = [
                self._to_states(sanitized.rows[j], binned) for j in members
            ]
            answers = self._batch_group(variables, state_rows, deadline)
            for j, answer in zip(members, answers):
                results[admitted[sanitized.kept_indices[j]]] = self._finish(
                    answer, started
                )
        out = []
        for r in results:
            assert r is not None
            out.append(r)
        return out

    def query_batch_columns(
        self,
        variables: Sequence[str],
        columns: "Mapping[str, Sequence[int]]",
    ) -> ColumnarBatchResult:
        """Columnar fast path: N binned same-signature rows, O(1) objects.

        ``columns`` maps variable → integer bin-state column (all the
        same length).  Validation is vectorized (per-column bounds
        checks instead of per-row dict sweeps) and the answer is one
        :class:`ColumnarBatchResult` instead of N ``QueryResult``\\ s,
        so the guarded overhead stays within a small constant factor of
        the raw engine kernel — this is the path the serving fabric's
        bulk lane and the load harness drive.

        Rows with out-of-range states are rejected via the ``valid``
        mask while the clean rows still answer.  Engine faults degrade
        through the row-wise chain exactly like :meth:`query_batch`.
        Accounting is bulk but row-equivalent: each input row counts as
        one query in :class:`ServerStats`; admission is one decision
        and one recorded outcome per *call* (documented deviation — the
        whole batch is admitted or shed as a unit).
        """
        started = time.monotonic()
        n_rows = 0
        cols: dict[str, np.ndarray] = {}
        bad_cols: list[str] = []
        cards = self._cards()
        for v, col in columns.items():
            v = str(v)
            arr = np.asarray(col)
            if arr.dtype.kind not in "iu":
                bad_cols.append(f"column {v!r} is not integer-typed")
                continue
            arr = arr.reshape(-1)
            cols[v] = arr
            n_rows = max(n_rows, arr.size)
        if self.admission is not None and not self.admission.admit():
            result = ColumnarBatchResult(
                status=STATUS_SHED,
                n_rows=n_rows,
                reasons=("admission control: server overloaded",),
                elapsed_seconds=time.monotonic() - started,
            )
            self.stats._count_columnar(result)
            return result

        def _rejected(reasons: tuple) -> ColumnarBatchResult:
            result = ColumnarBatchResult(
                status=STATUS_REJECTED,
                n_rows=n_rows,
                reasons=reasons,
                elapsed_seconds=time.monotonic() - started,
            )
            self.stats._count_columnar(result)
            if self.admission is not None:
                self.admission.record(False)
            return result

        unsupported = self._discrete_only("query_batch", binned=True)
        if unsupported:
            return _rejected(unsupported)
        reasons = list(bad_cols)
        variables = tuple(map(str, variables))
        known = self._known()
        for v in variables:
            if v not in known:
                reasons.append(f"unknown query variable {v!r}")
            elif v in cols:
                reasons.append(f"variable {v!r} may not appear in evidence")
        for v in cols:
            if v not in known:
                reasons.append(f"unknown variable {v!r}")
        if not variables:
            reasons.append("need at least one query variable")
        if not cols and not reasons:
            reasons.append("empty evidence columns")
        if any(c.size != n_rows for c in cols.values()):
            reasons.append(
                "evidence columns have mismatched lengths "
                f"{ {v: c.size for v, c in cols.items()} }"
            )
        if reasons:
            return _rejected(tuple(reasons))
        # Vectorized per-row domain check — the columnar analogue of
        # check_row's bin-range validation.
        valid = np.ones(n_rows, dtype=bool)
        for v, col in cols.items():
            valid &= (col >= 0) & (col < cards[v])
        n_valid = int(np.count_nonzero(valid))
        if n_valid == 0:
            return _rejected(("every row has out-of-range bin states",))
        if n_valid < n_rows:
            run_cols = {v: np.ascontiguousarray(c[valid]) for v, c in cols.items()}
        else:
            run_cols = cols
        deadline = self._deadline()
        breaker = self.breakers[TIER_COMPILED]
        result: "ColumnarBatchResult | None" = None
        if (
            deadline is None or time.monotonic() <= deadline
        ) and breaker.allow():
            try:
                pmfs = self._chain.engine.query_batch(variables, run_cols)
            except Exception as exc:
                breaker.record_failure()
                tier_errors = {TIER_COMPILED: f"{type(exc).__name__}: {exc}"}
            else:
                breaker.record_success()
                result = ColumnarBatchResult(
                    status=STATUS_OK,
                    n_rows=n_rows,
                    pmfs=pmfs,
                    valid=None if n_valid == n_rows else valid,
                    n_valid=n_valid,
                    tier=TIER_COMPILED,
                )
        else:
            tier_errors = {TIER_COMPILED: "circuit open"}
        if result is None:
            # Degraded: replay the valid rows through the row-wise chain
            # (same fallback semantics as query_batch's slow path).
            state_rows = [
                {v: int(run_cols[v][j]) for v in run_cols}
                for j in range(n_valid)
            ]
            answers = self._batch_group(variables, state_rows, deadline)
            if all(a.status == STATUS_OK for a in answers):
                result = ColumnarBatchResult(
                    status=STATUS_OK,
                    n_rows=n_rows,
                    pmfs=np.stack([np.asarray(a.value) for a in answers]),
                    valid=None if n_valid == n_rows else valid,
                    n_valid=n_valid,
                    tier=answers[0].tier if answers else None,
                    tier_errors=dict(tier_errors),
                    deadline_exceeded=any(
                        a.deadline_exceeded for a in answers
                    ),
                    approximate=any(a.approximate for a in answers),
                )
            else:
                errors = dict(tier_errors)
                for a in answers:
                    errors.update(a.tier_errors)
                result = ColumnarBatchResult(
                    status=STATUS_FAILED,
                    n_rows=n_rows,
                    tier_errors=errors,
                )
        result.elapsed_seconds = time.monotonic() - started
        self.stats._count_columnar(result)
        if self.admission is not None:
            self.admission.record(
                result.deadline_exceeded or result.status == STATUS_FAILED
            )
        return result

    def _batch_group(
        self, variables, state_rows, deadline
    ) -> "list[QueryResult]":
        """Answer one same-signature group, vectorized when possible."""
        breaker = self.breakers[TIER_COMPILED]
        engine = self._chain.engine
        if (
            (deadline is None or time.monotonic() <= deadline)
            and state_rows[0]  # engine batch kernel needs evidence
            and breaker.allow()
        ):
            try:
                # Same-signature group → hand the engine columnar intp
                # arrays, skipping its per-row dict fallback entirely.
                columns = {
                    v: np.fromiter(
                        (row[v] for row in state_rows),
                        dtype=np.intp,
                        count=len(state_rows),
                    )
                    for v in state_rows[0]
                }
                pmfs = engine.query_batch(variables, columns)
            except Exception:
                breaker.record_failure()
            else:
                breaker.record_success()
                return [
                    QueryResult(
                        status=STATUS_OK, value=pmf, tier=TIER_COMPILED
                    )
                    for pmf in pmfs
                ]
        # Degraded: row-by-row through the chain (zero-probability rows
        # and engine faults then resolve per row instead of poisoning
        # the whole batch).
        out = []
        for states in state_rows:
            try:
                answer = self._chain.answer(
                    variables, states, deadline=deadline
                )
            except Exception as exc:  # pragma: no cover - chain is terminal
                out.append(
                    QueryResult(
                        status=STATUS_FAILED,
                        tier_errors={"chain": f"{type(exc).__name__}: {exc}"},
                    )
                )
                continue
            out.append(
                QueryResult(
                    status=STATUS_OK,
                    value=answer.values,
                    tier=answer.tier,
                    tier_errors=answer.tier_errors,
                    deadline_exceeded=any(
                        "deadline" in e for e in answer.tier_errors.values()
                    ),
                    approximate=answer.approximate,
                )
            )
        return out

    # ------------------------------------------------------------------ #
    # Assessment surface (all model families)
    # ------------------------------------------------------------------ #

    def violation_prob(
        self,
        threshold: float,
        predicted_means: "Mapping | None" = None,
    ) -> QueryResult:
        """Guarded ``P(D > threshold)``, optionally under predicted
        service means (the pAccel projection).

        Discrete models answer through the fallback chain (response-node
        pmf tail); continuous models through the analytic assessor,
        breaker-guarded.
        """
        started = time.monotonic()
        shed = self._admit(started)
        if shed is not None:
            return shed
        if not np.isfinite(threshold):
            return self._reject(
                (f"threshold {threshold!r} is not finite",), started
            )
        response = self._model.response
        means = dict(predicted_means or {})
        reasons = check_row(
            means,
            known=self._known(),
            forbid={response},
            binned=False,
            require_nonempty=False,
        )
        if reasons:
            return self._reject(reasons, started)
        if self._chain is not None:
            disc = self._model.discretizer
            if disc is None:
                return self._reject(
                    ("discrete model has no discretizer",), started
                )
            states = self._to_states(means, binned=False)
            answer = self._chain.answer(
                [response], states, deadline=self._deadline()
            )
            prob = tail_probability_from_pmf(
                answer.values, disc.edges(response), float(threshold)
            )
            return self._finish(
                QueryResult(
                    status=STATUS_OK,
                    value=prob,
                    tier=answer.tier,
                    tier_errors=answer.tier_errors,
                    deadline_exceeded=any(
                        "deadline" in e for e in answer.tier_errors.values()
                    ),
                    approximate=answer.approximate,
                ),
                started,
            )
        return self._analytic(
            lambda: self._violation_analytic(float(threshold), means), started
        )

    def project(self, predicted_means: Mapping) -> QueryResult:
        """Guarded pAccel projection (``value`` is a ``PAccelResult``)."""
        started = time.monotonic()
        shed = self._admit(started)
        if shed is not None:
            return shed
        means = dict(predicted_means or {})
        reasons = check_row(
            means,
            known=self._known(),
            forbid={self._model.response},
            binned=False,
        )
        if reasons:
            return self._reject(reasons, started)
        from repro.apps.paccel import PAccel

        if self._chain is not None:
            # Route the discrete projection's posterior through the chain
            # so engine faults degrade instead of raising.
            disc = self._model.discretizer
            response = self._model.response
            states = self._to_states(means, binned=False)
            answer = self._chain.answer(
                [response], states, deadline=self._deadline()
            )
            from repro.apps.paccel import PAccelResult

            centers = disc.centers(response)
            mean = float(np.dot(answer.values, centers))
            std = float(
                np.sqrt(max(np.dot(answer.values, (centers - mean) ** 2), 0.0))
            )
            result = PAccelResult(
                evidence=means,
                edges=disc.edges(response),
                pmf=answer.values,
                mean=mean,
                std=std,
            )
            return self._finish(
                QueryResult(
                    status=STATUS_OK,
                    value=result,
                    tier=answer.tier,
                    tier_errors=answer.tier_errors,
                    approximate=answer.approximate,
                ),
                started,
            )
        return self._analytic(
            lambda: PAccel(self._model).project(means, rng=self.rng), started
        )

    # ------------------------------------------------------------------ #

    def _violation_analytic(self, threshold: float, means: dict) -> float:
        if isinstance(self._model.network, HybridResponseNetwork):
            if self._assessor is None:
                from repro.apps.assessment import RapidAssessor

                self._assessor = RapidAssessor(self._model)
            return float(
                self._assessor.violation_probability(threshold, means or None)
            )
        from repro.apps.paccel import PAccel

        pa = PAccel(self._model)
        result = pa.project(means, rng=self.rng) if means else pa.baseline(
            rng=self.rng
        )
        return float(result.violation_probability(threshold))

    def _analytic(self, compute, started: float) -> QueryResult:
        """Breaker-guarded single-backend (continuous) evaluation."""
        breaker = self.breakers[TIER_ANALYTIC]
        if not breaker.allow():
            return self._finish(
                QueryResult(
                    status=STATUS_FAILED,
                    tier_errors={TIER_ANALYTIC: "circuit open"},
                ),
                started,
            )
        try:
            value = compute()
        except Exception as exc:
            breaker.record_failure()
            return self._finish(
                QueryResult(
                    status=STATUS_FAILED,
                    tier_errors={
                        TIER_ANALYTIC: f"{type(exc).__name__}: {exc}"
                    },
                ),
                started,
            )
        breaker.record_success()
        return self._finish(
            QueryResult(status=STATUS_OK, value=value, tier=TIER_ANALYTIC),
            started,
        )


def binnable(model) -> bool:
    """Can raw-mean evidence be discretized for this model?"""
    return model.discretizer is not None
