"""Circuit breaking and admission control for the serving path.

Both mechanisms are *deterministic* so chaos tests replay exactly:

- :class:`CircuitBreaker` counts consecutive failures per backend and
  measures its cooldown in **calls**, not wall-clock seconds — a tripped
  backend is skipped for the next ``cooldown`` attempts, then allowed
  one half-open trial;
- :class:`AdmissionController` sheds load from a *seeded* RNG once the
  recent overload fraction (deadline overruns, total failures) crosses a
  threshold, so overload degrades to a bounded, reproducible trickle of
  refusals instead of an unbounded queue.

Both are **thread-safe**: every state transition happens under a
per-instance lock, so the :class:`~repro.serving.fabric.DynamicBatcher`'s
worker threads and concurrent single-query callers cannot corrupt
breaker state or lose admission-window outcomes.  Under threads the
*interleaving* of RNG draws depends on scheduling, so cross-thread runs
are deterministic in their invariants (counts always balance) rather
than in their exact shed pattern; single-threaded runs replay exactly
as before.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.exceptions import ServingError
from repro.obs.runtime import OBS as _OBS
from repro.utils.rng import ensure_rng

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Count-based breaker guarding one backend tier.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, :meth:`allow` refuses the next ``cooldown`` calls, then lets a
    single half-open probe through.  A successful probe closes the
    circuit; a failed one re-opens it for a fresh cooldown.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: int = 10,
        name: "str | None" = None,
    ):
        if failure_threshold < 1:
            raise ServingError("failure_threshold must be >= 1")
        if cooldown < 1:
            raise ServingError("cooldown must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.cooldown = int(cooldown)
        #: Label used in observability metric names (falls back to
        #: ``"breaker"`` for anonymous instances).
        self.name = str(name) if name is not None else "breaker"
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._cooldown_remaining = 0
        self.n_trips = 0
        self.n_refused = 0

    @property
    def state(self) -> str:
        return self._state

    def _transition(self, new_state: str) -> None:
        """State change + observability: every transition is counted and
        the per-breaker ``open`` gauge tracks 1 while not CLOSED.
        Callers must hold ``self._lock``."""
        old, self._state = self._state, new_state
        if old != new_state and _OBS.enabled:
            m = _OBS.metrics
            m.counter("serving.breaker.transitions").inc()
            m.counter(f"serving.breaker.{self.name}.to_{new_state}").inc()
            m.gauge(f"serving.breaker.{self.name}.open").set(
                0.0 if new_state == CLOSED else 1.0
            )

    def allow(self) -> bool:
        """May the guarded backend be attempted right now?"""
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._cooldown_remaining > 0:
                    self._cooldown_remaining -= 1
                    self.n_refused += 1
                    return False
                self._transition(HALF_OPEN)
                return True
            # HALF_OPEN: exactly one probe is in flight per cooldown
            # lapse; further callers wait for its outcome.
            self.n_refused += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._transition(CLOSED)

    def reset(self) -> None:
        """Force the breaker closed with a clean failure history.

        Used when a recovered replica is readmitted by the health
        prober: the replica proved itself with canary queries, so trip
        state accumulated while it was unreachable must not follow it
        back into service.
        """
        with self._lock:
            self._consecutive_failures = 0
            self._cooldown_remaining = 0
            self._transition(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if (
                self._state == HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold
            ):
                self._transition(OPEN)
                self._cooldown_remaining = self.cooldown
                self._consecutive_failures = 0
                self.n_trips += 1


class AdmissionController:
    """Deterministic, seeded load shedding.

    Tracks the last ``window`` query outcomes (``True`` = overload
    signal: deadline overrun or every-tier failure).  When the overload
    fraction reaches ``overload_threshold``, each incoming query is shed
    with probability ``shed_fraction`` drawn from the seeded RNG —
    deterministic under a fixed seed, testable, and bounded (admitted
    work keeps flowing at ``1 - shed_fraction``).
    """

    def __init__(
        self,
        window: int = 50,
        overload_threshold: float = 0.5,
        shed_fraction: float = 0.5,
        rng=None,
    ):
        if window < 1:
            raise ServingError("window must be >= 1")
        if not 0.0 < overload_threshold <= 1.0:
            raise ServingError("overload_threshold must be in (0, 1]")
        if not 0.0 <= shed_fraction <= 1.0:
            raise ServingError("shed_fraction must be in [0, 1]")
        self.window = int(window)
        self.overload_threshold = float(overload_threshold)
        self.shed_fraction = float(shed_fraction)
        self.rng = ensure_rng(rng)
        self._lock = threading.Lock()
        self._outcomes: deque = deque(maxlen=self.window)
        self.n_shed = 0
        self.n_admitted = 0

    def _overload_fraction_locked(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(self._outcomes) / len(self._outcomes)

    @property
    def overload_fraction(self) -> float:
        with self._lock:
            return self._overload_fraction_locked()

    @property
    def overloaded(self) -> bool:
        with self._lock:
            return (
                len(self._outcomes) >= self.window
                and self._overload_fraction_locked() >= self.overload_threshold
            )

    def admit(self) -> bool:
        """Admission decision for one incoming query."""
        with self._lock:
            overloaded = (
                len(self._outcomes) >= self.window
                and self._overload_fraction_locked() >= self.overload_threshold
            )
            if overloaded and self.rng.random() < self.shed_fraction:
                self.n_shed += 1
                return False
            self.n_admitted += 1
            return True

    def record(self, overloaded: bool) -> None:
        """Report one completed query's overload signal."""
        with self._lock:
            self._outcomes.append(bool(overloaded))
