"""Data-quality gate and post-publish accuracy tripwire.

Monitoring windows feed model reconstruction; a poisoned window (sensor
stuck at NaN, a unit mix-up shifting every mean, a burst of impossible
outliers) silently corrupts the next model and every decision made from
it.  The gate sits *in front of* reconstruction:

- **schema** — every expected column present, nothing empty;
- **NaN budget** — per-column non-finite fraction under a cap;
- **outliers** — robust z-scores (median/MAD) against the window itself,
  fraction capped;
- **drift** — a mean-shift score per column against an EWMA reference of
  previously accepted windows; a window that jumps too many reference
  standard deviations is quarantined, not learned from.

Quarantined windows are recorded (index, verdict) for operator review;
clean windows update the reference statistics and flow to learning.

:class:`AccuracyTripwire` closes the loop *after* publication: a freshly
published model is scored (per-row log10-likelihood) against its
predecessor on the same window, and a regression beyond tolerance
auto-rolls the registry back to the prior version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.exceptions import ServingError


@dataclass
class WindowVerdict:
    """The gate's decision for one monitoring window."""

    accepted: bool
    reasons: tuple = ()
    drift_score: float = 0.0
    column_drift: dict = field(default_factory=dict)
    n_rows: int = 0


class DataQualityGate:
    """Schema / NaN / outlier / drift screening of monitoring windows."""

    def __init__(
        self,
        columns: Iterable[str],
        max_nan_fraction: float = 0.2,
        outlier_z: float = 8.0,
        max_outlier_fraction: float = 0.05,
        drift_threshold: float = 6.0,
        ema: float = 0.3,
        min_rows: int = 10,
    ):
        self.columns = tuple(map(str, columns))
        if not self.columns:
            raise ServingError("gate needs at least one expected column")
        if not 0.0 <= max_nan_fraction < 1.0:
            raise ServingError("max_nan_fraction must be in [0, 1)")
        if outlier_z <= 0 or drift_threshold <= 0:
            raise ServingError("outlier_z and drift_threshold must be > 0")
        if not 0.0 < ema <= 1.0:
            raise ServingError("ema must be in (0, 1]")
        self.max_nan_fraction = float(max_nan_fraction)
        self.outlier_z = float(outlier_z)
        self.max_outlier_fraction = float(max_outlier_fraction)
        self.drift_threshold = float(drift_threshold)
        self.ema = float(ema)
        self.min_rows = int(min_rows)
        self._ref_mean: dict[str, float] = {}
        self._ref_std: dict[str, float] = {}
        self.n_windows = 0
        self.n_accepted = 0
        #: ``(window_index, WindowVerdict)`` for every refused window.
        self.quarantined: list = []

    # ------------------------------------------------------------------ #

    @property
    def has_reference(self) -> bool:
        return bool(self._ref_mean)

    def reference(self) -> "dict[str, tuple[float, float]]":
        return {
            c: (self._ref_mean[c], self._ref_std[c]) for c in self._ref_mean
        }

    def _column_checks(self, data) -> "tuple[list[str], dict[str, float]]":
        reasons: list[str] = []
        drift: dict[str, float] = {}
        for col in self.columns:
            if col not in data:
                reasons.append(f"missing column {col!r}")
                continue
            x = np.asarray(data[col], dtype=float)
            if x.size == 0:
                reasons.append(f"column {col!r} is empty")
                continue
            finite = np.isfinite(x)
            nan_frac = 1.0 - finite.mean()
            if nan_frac > self.max_nan_fraction:
                reasons.append(
                    f"column {col!r}: non-finite fraction {nan_frac:.2f} "
                    f"> {self.max_nan_fraction:.2f}"
                )
                continue
            clean = x[finite]
            med = float(np.median(clean))
            mad = float(np.median(np.abs(clean - med)))
            scale = 1.4826 * mad if mad > 0 else float(clean.std()) or 1.0
            out_frac = float(
                np.mean(np.abs(clean - med) / scale > self.outlier_z)
            )
            if out_frac > self.max_outlier_fraction:
                reasons.append(
                    f"column {col!r}: outlier fraction {out_frac:.2f} "
                    f"> {self.max_outlier_fraction:.2f} "
                    f"(robust z > {self.outlier_z:g})"
                )
            if col in self._ref_mean:
                ref_std = max(self._ref_std[col], 1e-12)
                score = abs(float(clean.mean()) - self._ref_mean[col]) / ref_std
                drift[col] = score
                if score > self.drift_threshold:
                    reasons.append(
                        f"column {col!r}: mean-shift drift {score:.1f}σ "
                        f"> {self.drift_threshold:g}σ vs reference"
                    )
        return reasons, drift

    def inspect(self, data) -> WindowVerdict:
        """Screen one monitoring window; accepted windows update the
        drift reference, refused ones are quarantined with reasons."""
        index = self.n_windows
        self.n_windows += 1
        n_rows = getattr(data, "n_rows", 0)
        reasons, drift = self._column_checks(data)
        if n_rows < self.min_rows:
            reasons.insert(0, f"window has {n_rows} rows < {self.min_rows}")
        verdict = WindowVerdict(
            accepted=not reasons,
            reasons=tuple(reasons),
            drift_score=max(drift.values(), default=0.0),
            column_drift=drift,
            n_rows=n_rows,
        )
        if verdict.accepted:
            self.n_accepted += 1
            self._update_reference(data)
        else:
            self.quarantined.append((index, verdict))
        return verdict

    def _update_reference(self, data) -> None:
        for col in self.columns:
            x = np.asarray(data[col], dtype=float)
            x = x[np.isfinite(x)]
            m, s = float(x.mean()), float(x.std())
            if col not in self._ref_mean:
                self._ref_mean[col], self._ref_std[col] = m, s
            else:
                a = self.ema
                self._ref_mean[col] = (1 - a) * self._ref_mean[col] + a * m
                self._ref_std[col] = (1 - a) * self._ref_std[col] + a * s


# --------------------------------------------------------------------- #


@dataclass
class PublishOutcome:
    """What happened when a model met the registry through the tripwire."""

    version: int                    # version the publish created
    active_version: int             # version serving after the check
    rolled_back: bool
    new_score: float                # per-row log10-likelihood, new model
    previous_score: "float | None"  # same window, previous active model
    detail: str = ""


class AccuracyTripwire:
    """Post-publish log-likelihood regression check with auto-rollback."""

    def __init__(self, registry, max_regression: float = 0.5):
        if max_regression < 0:
            raise ServingError("max_regression must be >= 0")
        self.registry = registry
        self.max_regression = float(max_regression)
        self.n_rollbacks = 0

    def publish_checked(
        self, model, window, metadata: "Mapping | None" = None
    ) -> PublishOutcome:
        """Publish ``model``, score it against the incumbent on
        ``window``, and roll back if accuracy regressed beyond
        tolerance.

        The incumbent is loaded *before* publishing (publishing moves
        the active pointer).  Scores are per-row log10-likelihood so the
        tolerance is window-size independent.
        """
        previous = None
        if self.registry.active_version is not None:
            previous = self.registry.load()
        version = self.registry.publish(
            model, activate=True, metadata=dict(metadata or {})
        )
        n = max(window.n_rows, 1)
        new_score = float(model.log10_likelihood(window)) / n
        prev_score = None
        if previous is not None:
            try:
                prev_score = float(previous.log10_likelihood(window)) / n
            except Exception as exc:  # incumbent can't score: keep new model
                return PublishOutcome(
                    version=version,
                    active_version=version,
                    rolled_back=False,
                    new_score=new_score,
                    previous_score=None,
                    detail=f"previous model unscoreable: {exc}",
                )
        if (
            prev_score is not None
            and np.isfinite(prev_score)
            and (not np.isfinite(new_score)
                 or new_score < prev_score - self.max_regression)
        ):
            active = self.registry.rollback(
                reason=(
                    f"accuracy tripwire: per-row log10-likelihood "
                    f"{new_score:.4f} regressed beyond "
                    f"{prev_score:.4f} - {self.max_regression:g}"
                )
            )
            self.n_rollbacks += 1
            return PublishOutcome(
                version=version,
                active_version=active,
                rolled_back=True,
                new_score=new_score,
                previous_score=prev_score,
                detail="rolled back to previous healthy version",
            )
        return PublishOutcome(
            version=version,
            active_version=version,
            rolled_back=False,
            new_score=new_score,
            previous_score=prev_score,
        )
