"""Evidence validation and sanitization for the serving layer.

Monitoring data arrives noisy and partial (Sutton & Jordan's point about
real queueing measurements), so the serving front-end never trusts a
query row: every row is checked against the model's variable set and
value domain, and bad rows are *rejected with reasons* — one
:class:`RowRejection` per offending row — instead of crashing the whole
batch.  Clean rows keep flowing.

Two evidence unit systems are supported:

- **raw** (default) — values are continuous measurement means in the
  original units; they must be finite numbers and are later discretized
  through the model's discretizer;
- **binned** — values are integer bin states; they must be integral and
  in ``[0, cardinality)`` for their variable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence


@dataclass(frozen=True)
class RowRejection:
    """Why one evidence row was refused."""

    index: int
    reasons: tuple[str, ...]

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"row {self.index}: {'; '.join(self.reasons)}"


@dataclass
class SanitizedBatch:
    """Outcome of guarding a batch of evidence rows.

    ``rows`` holds the accepted rows (values coerced to ``float`` / bin
    ``int``), ``kept_indices`` their positions in the original input, and
    ``rejections`` one entry per refused row.
    """

    rows: list = field(default_factory=list)
    kept_indices: list = field(default_factory=list)
    rejections: list = field(default_factory=list)

    @property
    def n_accepted(self) -> int:
        return len(self.rows)

    @property
    def n_rejected(self) -> int:
        return len(self.rejections)


def check_row(
    row: Mapping,
    *,
    known: "frozenset[str] | set[str]",
    cards: "Mapping[str, int] | None" = None,
    forbid: Iterable[str] = (),
    binned: bool = False,
    require_nonempty: bool = True,
) -> tuple[str, ...]:
    """Return the tuple of reasons ``row`` must be rejected (empty = ok)."""
    reasons: list[str] = []
    if not isinstance(row, Mapping):
        return (f"evidence row must be a mapping, got {type(row).__name__}",)
    if require_nonempty and not row:
        reasons.append("empty evidence row")
    forbidden = set(map(str, forbid))
    for name, value in row.items():
        name = str(name)
        if name not in known:
            reasons.append(f"unknown variable {name!r}")
            continue
        if name in forbidden:
            reasons.append(f"variable {name!r} may not appear in evidence")
            continue
        if binned:
            try:
                state = int(value)
                drift = float(value) - state
            except (TypeError, ValueError):
                reasons.append(f"{name!r}: bin state {value!r} is not an integer")
                continue
            if drift != 0.0:
                reasons.append(f"{name!r}: bin state {value!r} is not integral")
                continue
            card = (cards or {}).get(name)
            if card is not None and not 0 <= state < card:
                reasons.append(
                    f"{name!r}: bin {state} out of range [0, {card})"
                )
        else:
            try:
                x = float(value)
            except (TypeError, ValueError):
                reasons.append(f"{name!r}: value {value!r} is not a number")
                continue
            if math.isnan(x):
                reasons.append(f"{name!r}: NaN mean")
            elif math.isinf(x):
                reasons.append(f"{name!r}: non-finite mean {x!r}")
    return tuple(reasons)


def sanitize_rows(
    rows: "Sequence[Mapping]",
    *,
    known: Iterable[str],
    cards: "Mapping[str, int] | None" = None,
    forbid: Iterable[str] = (),
    binned: bool = False,
) -> SanitizedBatch:
    """Validate a batch of evidence rows, splitting clean from rejected.

    Never raises on bad content — malformed rows come back as
    :class:`RowRejection` entries with every reason listed.
    """
    known_set = frozenset(map(str, known))
    batch = SanitizedBatch()
    for i, row in enumerate(rows):
        reasons = check_row(
            row, known=known_set, cards=cards, forbid=forbid, binned=binned
        )
        if reasons:
            batch.rejections.append(RowRejection(index=i, reasons=reasons))
            continue
        if binned:
            clean = {str(k): int(v) for k, v in row.items()}
        else:
            clean = {str(k): float(v) for k, v in row.items()}
        batch.rows.append(clean)
        batch.kept_indices.append(i)
    return batch


@dataclass
class GuardedBatch:
    """A guarded batch-query outcome: per-kept-row results + rejections.

    ``results[j]`` answers the row at original index
    ``kept_indices[j]``; rejected rows are absent from ``results`` and
    explained in ``rejections``.
    """

    results: list
    kept_indices: list
    rejections: "list[RowRejection]"

    @property
    def n_accepted(self) -> int:
        return len(self.results)

    @property
    def n_rejected(self) -> int:
        return len(self.rejections)
