"""Seeded shard-fault injection for the serving fabric.

Chaos testing the replicated fabric needs faults that are *repeatable*
(a failing CI run must replay exactly) and *shaped like production
incidents* (not just "every call fails").  This module mirrors the
idiom of :class:`repro.decentralized.messaging.ChannelFaults` and
:mod:`repro.simulator.faults`: declarative windows, seeded draws,
half-open intervals, O(1) counters.

- :class:`FaultWindow` — one fault regime over a half-open range of
  *replica calls* ``[start, end)``.  Windows are indexed by call count
  rather than wall-clock so tests are deterministic regardless of
  scheduler timing.  Kinds:

  - ``"latency"`` — each affected call sleeps ``latency_s`` with
    probability ``probability`` (a latency storm / stall);
  - ``"errors"`` — each affected call fails with ``probability``
    (an error burst);
  - ``"blackout"`` — every affected call fails (replica unreachable);
  - ``"ramp"`` — failure probability decays linearly from
    ``probability`` at ``start`` to zero at ``end`` (slow recovery:
    a rebooting replica that still drops some traffic).

- :class:`ReplicaFaultInjector` — thread-safe per-replica injector the
  :class:`~repro.serving.fabric.ReplicaGroup` consults *before* each
  dispatch.  A ``None`` verdict means the call proceeds normally; a
  string verdict is the failure reason and the group synthesizes a
  FAILED result without touching the replica (the replica never saw
  the request — exactly what a network-partitioned shard looks like).
  Imperative helpers (:meth:`blackout`, :meth:`error_burst`,
  :meth:`latency_storm`, :meth:`recovery_ramp`) append windows
  relative to the *current* call counter so chaos tests read like an
  incident timeline.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass

from repro.exceptions import ServingError
from repro.utils.rng import ensure_rng

KIND_LATENCY = "latency"
KIND_ERRORS = "errors"
KIND_BLACKOUT = "blackout"
KIND_RAMP = "ramp"

KINDS = (KIND_LATENCY, KIND_ERRORS, KIND_BLACKOUT, KIND_RAMP)


@dataclass(frozen=True)
class FaultWindow:
    """One fault regime over the half-open call range ``[start, end)``.

    ``end`` may be ``math.inf`` for an open-ended fault (cleared later
    with :meth:`ReplicaFaultInjector.clear`).  ``probability`` is the
    per-call failure probability for ``errors`` (and the *initial*
    probability for ``ramp``); ``latency`` windows use it as the
    per-call probability of sleeping ``latency_s``.
    """

    kind: str
    start: int
    end: float
    probability: float = 1.0
    latency_s: float = 0.0

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ServingError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )
        if self.start < 0:
            raise ServingError("fault window start must be >= 0")
        if not self.end > self.start:
            raise ServingError("fault window must be non-empty (end > start)")
        if not 0.0 <= self.probability <= 1.0:
            raise ServingError("fault probability must be in [0, 1]")
        if self.latency_s < 0.0:
            raise ServingError("latency_s must be >= 0")
        if self.kind == KIND_LATENCY and self.latency_s == 0.0:
            raise ServingError("latency windows need latency_s > 0")
        if self.kind == KIND_RAMP and not math.isfinite(self.end):
            raise ServingError("ramp windows need a finite end")

    def active_at(self, call: int) -> bool:
        return self.start <= call < self.end

    def failure_probability(self, call: int) -> float:
        """Per-call failure probability at call index ``call``."""
        if not self.active_at(call):
            return 0.0
        if self.kind == KIND_BLACKOUT:
            return 1.0
        if self.kind == KIND_ERRORS:
            return self.probability
        if self.kind == KIND_RAMP:
            span = self.end - self.start
            return self.probability * (1.0 - (call - self.start) / span)
        return 0.0  # latency windows delay, they do not fail


class ReplicaFaultInjector:
    """Seeded, call-indexed fault source for one replica.

    The group calls :meth:`before_call` once per dispatch; the injector
    advances its call counter, applies any active latency window
    (sleeping on the *caller's* thread — exactly where a stalled
    backend would stall the caller), then draws against the combined
    failure probability of the active windows.  All draws come from one
    seeded RNG, so a single-threaded replay is exact and a threaded one
    is deterministic in aggregate.
    """

    def __init__(self, windows=(), rng=None):
        self.rng = ensure_rng(rng)
        self._lock = threading.Lock()
        self._windows: "list[FaultWindow]" = list(windows)
        for w in self._windows:
            if not isinstance(w, FaultWindow):
                raise ServingError("windows must be FaultWindow instances")
        self.n_calls = 0
        self.n_failed = 0
        self.n_delayed = 0
        self.injected_sleep_s = 0.0

    # ------------------------------------------------------------------ #

    @property
    def windows(self) -> "tuple[FaultWindow, ...]":
        with self._lock:
            return tuple(self._windows)

    def add_window(self, window: FaultWindow) -> FaultWindow:
        with self._lock:
            self._windows.append(window)
        return window

    def clear(self) -> None:
        """Lift every fault immediately (the incident is over)."""
        with self._lock:
            self._windows.clear()

    # Imperative timeline helpers: windows start at the *current* call. #

    def _relative(self, kind, duration, probability, latency_s=0.0):
        with self._lock:
            start = self.n_calls
            end = math.inf if duration is None else start + int(duration)
            window = FaultWindow(
                kind, start, end, probability=probability, latency_s=latency_s
            )
            self._windows.append(window)
        return window

    def blackout(self, duration: "int | None" = None) -> FaultWindow:
        """Replica unreachable for the next ``duration`` calls (or until
        :meth:`clear` when ``duration`` is None)."""
        return self._relative(KIND_BLACKOUT, duration, 1.0)

    def error_burst(
        self, probability: float, duration: "int | None" = None
    ) -> FaultWindow:
        return self._relative(KIND_ERRORS, duration, probability)

    def latency_storm(
        self,
        latency_s: float,
        probability: float = 1.0,
        duration: "int | None" = None,
    ) -> FaultWindow:
        return self._relative(
            KIND_LATENCY, duration, probability, latency_s=latency_s
        )

    def recovery_ramp(self, probability: float, duration: int) -> FaultWindow:
        """Linear decay from ``probability`` to zero over ``duration``
        calls — a replica that came back but is still shaky."""
        if duration is None:
            raise ServingError("recovery_ramp needs a finite duration")
        return self._relative(KIND_RAMP, duration, probability)

    # ------------------------------------------------------------------ #

    def before_call(self) -> "str | None":
        """Advance one call; return a failure reason or None (healthy).

        Latency windows sleep here, on the dispatching thread, before
        the failure draw — a stalled *and* failing replica both delays
        and errors, like real brownouts.
        """
        with self._lock:
            call = self.n_calls
            self.n_calls += 1
            sleep_s = 0.0
            fail_p = 0.0
            worst: "FaultWindow | None" = None
            for w in self._windows:
                if not w.active_at(call):
                    continue
                if w.kind == KIND_LATENCY:
                    if w.probability >= 1.0 or self.rng.random() < w.probability:
                        sleep_s = max(sleep_s, w.latency_s)
                    continue
                p = w.failure_probability(call)
                if p > fail_p:
                    fail_p, worst = p, w
            failed = fail_p > 0.0 and (
                fail_p >= 1.0 or self.rng.random() < fail_p
            )
            if sleep_s > 0.0:
                self.n_delayed += 1
                self.injected_sleep_s += sleep_s
            if failed:
                self.n_failed += 1
        if sleep_s > 0.0:
            time.sleep(sleep_s)
        if failed:
            assert worst is not None
            return f"injected {worst.kind} fault (call {call})"
        return None

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "n_calls": self.n_calls,
                "n_failed": self.n_failed,
                "n_delayed": self.n_delayed,
                "injected_sleep_s": self.injected_sleep_s,
                "n_windows": len(self._windows),
            }
