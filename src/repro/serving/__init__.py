"""Resilient model-serving layer.

Everything between a learned model and the autonomic components that
query it: the versioned :class:`ModelRegistry`, the guarded
:class:`ModelServer` front-end with its tiered :class:`FallbackChain`,
deterministic :class:`CircuitBreaker` / :class:`AdmissionController`
load protection, and the :class:`DataQualityGate` +
:class:`AccuracyTripwire` pair that keep poisoned monitoring windows
and regressed models out of production.  On top of single servers, the
:mod:`repro.serving.fabric` module scales out: a sharded multi-tenant
:class:`ShardRouter` with per-tenant budgets and a thread-safe
:class:`DynamicBatcher` that coalesces concurrent single queries into
batched kernel calls.
"""

from repro.serving.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    AdmissionController,
    CircuitBreaker,
)
from repro.serving.fabric import (
    DynamicBatcher,
    HedgePolicy,
    PendingQuery,
    ReplicaGroup,
    ServingFabric,
    ShardRouter,
    TenantState,
    build_fabric,
    shard_index,
)
from repro.serving.fallback import (
    CHAIN,
    TIER_COMPILED,
    TIER_PRIOR,
    TIER_SAMPLING,
    TIER_SWEEP,
    FallbackChain,
    TierAnswer,
)
from repro.serving.faults import (
    KINDS,
    FaultWindow,
    ReplicaFaultInjector,
)
from repro.serving.guards import (
    GuardedBatch,
    RowRejection,
    SanitizedBatch,
    check_row,
    sanitize_rows,
)
from repro.serving.health import (
    ACTIVE,
    EJECTED,
    PROBATION,
    HealthPolicy,
    HealthProber,
    QuantileTracker,
    ReplicaHealth,
)
from repro.serving.quality import (
    AccuracyTripwire,
    DataQualityGate,
    PublishOutcome,
    WindowVerdict,
)
from repro.serving.registry import ModelRegistry, VersionInfo
from repro.serving.server import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_SHED,
    TIER_ANALYTIC,
    ColumnarBatchResult,
    ModelServer,
    QueryResult,
    ServerStats,
)

__all__ = [
    "ACTIVE",
    "AccuracyTripwire",
    "AdmissionController",
    "CHAIN",
    "CLOSED",
    "CircuitBreaker",
    "ColumnarBatchResult",
    "DataQualityGate",
    "DynamicBatcher",
    "EJECTED",
    "FallbackChain",
    "FaultWindow",
    "GuardedBatch",
    "HALF_OPEN",
    "HealthPolicy",
    "HealthProber",
    "HedgePolicy",
    "KINDS",
    "ModelRegistry",
    "ModelServer",
    "OPEN",
    "PROBATION",
    "PendingQuery",
    "PublishOutcome",
    "QuantileTracker",
    "QueryResult",
    "ReplicaFaultInjector",
    "ReplicaGroup",
    "ReplicaHealth",
    "RowRejection",
    "SanitizedBatch",
    "ServerStats",
    "ServingFabric",
    "ShardRouter",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_REJECTED",
    "STATUS_SHED",
    "TIER_ANALYTIC",
    "TIER_COMPILED",
    "TIER_PRIOR",
    "TIER_SAMPLING",
    "TIER_SWEEP",
    "TenantState",
    "TierAnswer",
    "VersionInfo",
    "WindowVerdict",
    "build_fabric",
    "check_row",
    "sanitize_rows",
    "shard_index",
]
